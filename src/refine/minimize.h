// Counterexample minimization: shrink a violating execution's recorded
// decision schedule until it is 1-minimal, and persist it as a
// self-contained replayable trace file.
//
// A violation reported by the explorer carries the full decision sequence
// of the execution that manifested it (Violation::schedule) — often
// hundreds of decisions for a PCT or swarm run, most of them irrelevant to
// the bug. MinimizeSchedule() shrinks that sequence with three reduction
// passes, re-validating every candidate by actual re-execution through
// Explorer::ReplaySchedule (never by reasoning about the schedule):
//
//   1. event-range deletion — delta-debugging style: delete contiguous
//      chunks, halving the chunk size down to single decisions;
//   2. thread-subset removal — drop every decision of one thread at a
//      time (a client whose operations are incidental disappears whole);
//   3. crash-point hoisting — move the crash decision earlier; an equal-
//      length schedule is accepted only if the crash strictly moved
//      toward the front (the bug usually lives just before the crash, so
//      hoisting exposes further deletions).
//
// A candidate is accepted iff its replay still produces a violation of the
// same kind. Replay uses intent-based skip-unmatched semantics
// (detail::ScheduleReplayDriver), and every accepted candidate is
// CANONICALIZED to the intent subsequence the replay actually consumed —
// Replay(consumed(X)) reproduces Replay(X), so canonicalization is free,
// and it makes the termination measure strict: each acceptance decreases
// (schedule length, first-crash position) lexicographically. The loop
// stops after a full pass with no acceptance, at which point pass 1's
// chunk=1 sweep has proven the result 1-minimal: deleting any single
// retained decision makes the violation disappear.
//
// The trace-file format ("pcc-trace v1", plain text, one decision per
// line) is deliberately self-contained: run_id names the system harness,
// so `bench_pct --replay <file>` rebuilds the instance and replays the
// schedule — every bug report becomes a one-command repro.
#ifndef PERENNIAL_SRC_REFINE_MINIMIZE_H_
#define PERENNIAL_SRC_REFINE_MINIMIZE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/refine/explorer.h"
#include "src/refine/run_state.h"

namespace perennial::refine {

// A persisted minimized counterexample. `run_id` names the harness that
// reproduces it (the same slug the bench table uses); `kind` is the
// violation class the schedule provokes; `seed` records the PCT/random
// seed that originally found it (informational — replay does not need it).
struct TraceFile {
  std::string run_id;
  std::string kind;
  uint64_t seed = 0;
  std::vector<ScheduleDecision> schedule;
};

// Text round-trip (exposed separately from file I/O for the tests).
std::string FormatTrace(const TraceFile& trace);
Status ParseTrace(const std::string& text, TraceFile* out);

// Plain write / read of the text format. SaveTrace truncates `path`.
Status SaveTrace(const std::string& path, const TraceFile& trace);
Status LoadTrace(const std::string& path, TraceFile* out);

struct MinimizeOptions {
  // Replay budget: minimization stops (possibly before local minimality)
  // once this many candidate re-executions have run. Each replay is one
  // bounded execution, so the default is generous.
  uint64_t max_replays = 50'000;
};

struct MinimizeStats {
  uint64_t replays = 0;   // candidate re-executions performed
  uint64_t accepted = 0;  // candidates that kept the violation
};

struct MinimizeResult {
  // The minimized schedule (canonical intent subsequence). 1-minimal when
  // the replay budget did not run out.
  std::vector<ScheduleDecision> schedule;
  // The violation the minimized schedule produces. Its own `schedule`
  // member holds the FULL decision sequence of the minimized execution
  // (intents plus deterministic default picks) — `schedule` above is the
  // minimal intent list the trace file stores.
  Violation violation;
  MinimizeStats stats;
  // False when the seed witness did not reproduce at all (the result then
  // echoes the seed violation unmodified).
  bool reproduced = false;
};

// Shrinks `seed.schedule` against a fresh system built by `factory` under
// `options` (of which only the execution-shaping fields matter: the
// function clears durability, progress, dedup, and checkpoint knobs and
// pins max_violations to 1). "Still violates" means: the replay reports at
// least one violation and its kind equals seed.kind.
template <typename Spec>
MinimizeResult MinimizeSchedule(const Spec& spec,
                                const typename Explorer<Spec>::Factory& factory,
                                const ExplorerOptions& options, const Violation& seed,
                                const MinimizeOptions& mopts = MinimizeOptions{}) {
  ExplorerOptions opts = options;
  opts.max_violations = 1;
  opts.dedup_histories = false;
  opts.memoize_spec_prefixes = false;
  opts.progress_callback = nullptr;
  opts.wall_deadline_ms = 0;
  opts.max_memory_bytes = 0;
  opts.cancel_token = nullptr;
  opts.cancel_after_decisions = 0;
  opts.checkpoint_path.clear();
  opts.resume_path.clear();
  opts.checkpoint_every_execs = 0;
  opts.checkpoint_every_secs = 0;

  MinimizeResult result;
  Explorer<Spec> engine(spec, factory, opts);
  auto replay = [&](const std::vector<ScheduleDecision>& cand,
                    std::vector<ScheduleDecision>* consumed, Violation* out) -> bool {
    ++result.stats.replays;
    Report r = engine.ReplaySchedule(cand, consumed);
    if (r.violations.empty() || r.violations[0].kind != seed.kind) {
      return false;
    }
    if (out != nullptr) {
      *out = r.violations[0];
    }
    return true;
  };
  auto first_crash = [](const std::vector<ScheduleDecision>& s) -> size_t {
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i].kind == detail::AltKind::kCrash) {
        return i;
      }
    }
    return s.size();
  };

  // Canonicalize the seed witness: replay it once and keep the consumed
  // intent subsequence (which reproduces the identical execution).
  std::vector<ScheduleDecision> cur;
  {
    std::vector<ScheduleDecision> consumed;
    if (!replay(seed.schedule, &consumed, &result.violation)) {
      result.schedule = seed.schedule;
      result.violation = seed;
      return result;
    }
    result.reproduced = true;
    cur = std::move(consumed);
  }

  auto budget_left = [&] { return result.stats.replays < mopts.max_replays; };
  auto accept = [&](std::vector<ScheduleDecision> consumed, Violation v) {
    cur = std::move(consumed);
    result.violation = std::move(v);
    ++result.stats.accepted;
  };

  bool changed = true;
  while (changed && budget_left()) {
    changed = false;

    // Pass 1: contiguous range deletion, halving chunk sizes down to 1.
    // Every acceptance strictly shrinks `cur` (the candidate is shorter
    // and the consumed subsequence no longer than the candidate).
    for (size_t chunk = std::max<size_t>(cur.size() / 2, 1); !cur.empty(); chunk /= 2) {
      for (size_t start = 0; start < cur.size() && budget_left();) {
        std::vector<ScheduleDecision> cand;
        cand.reserve(cur.size() - std::min(chunk, cur.size() - start));
        cand.insert(cand.end(), cur.begin(), cur.begin() + start);
        cand.insert(cand.end(), cur.begin() + std::min(start + chunk, cur.size()), cur.end());
        std::vector<ScheduleDecision> consumed;
        Violation v;
        if (replay(cand, &consumed, &v)) {
          accept(std::move(consumed), std::move(v));
          changed = true;
          // Do not advance: the next chunk slid into `start`.
        } else {
          start += chunk;
        }
      }
      if (chunk <= 1) {
        break;
      }
    }

    // Pass 2: drop every decision of one thread at a time.
    std::vector<int> tids;
    for (const ScheduleDecision& d : cur) {
      if (d.kind == detail::AltKind::kThread &&
          std::find(tids.begin(), tids.end(), d.thread) == tids.end()) {
        tids.push_back(d.thread);
      }
    }
    std::sort(tids.begin(), tids.end());
    for (int tid : tids) {
      if (!budget_left()) {
        break;
      }
      std::vector<ScheduleDecision> cand;
      cand.reserve(cur.size());
      for (const ScheduleDecision& d : cur) {
        if (!(d.kind == detail::AltKind::kThread && d.thread == tid)) {
          cand.push_back(d);
        }
      }
      if (cand.size() == cur.size()) {
        continue;  // tid vanished during this pass
      }
      std::vector<ScheduleDecision> consumed;
      Violation v;
      if (replay(cand, &consumed, &v)) {
        accept(std::move(consumed), std::move(v));
        changed = true;
      }
    }

    // Pass 3: hoist the first crash toward the front. Equal-length
    // candidates are accepted only when the crash strictly moved earlier,
    // so the (length, crash-position) measure still decreases.
    const size_t p = first_crash(cur);
    if (p < cur.size() && p > 0) {
      for (size_t q : {size_t{0}, p / 4, p / 2, (3 * p) / 4}) {
        if (q >= p || !budget_left()) {
          continue;
        }
        std::vector<ScheduleDecision> cand = cur;
        ScheduleDecision crash = cand[p];
        cand.erase(cand.begin() + p);
        cand.insert(cand.begin() + q, crash);
        std::vector<ScheduleDecision> consumed;
        Violation v;
        if (replay(cand, &consumed, &v) &&
            (consumed.size() < cur.size() ||
             (consumed.size() == cur.size() && first_crash(consumed) < first_crash(cur)))) {
          accept(std::move(consumed), std::move(v));
          changed = true;
          break;  // positions shifted; re-derive p next round
        }
      }
    }
  }

  result.schedule = std::move(cur);
  return result;
}

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_MINIMIZE_H_
