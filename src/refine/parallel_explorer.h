// Multi-threaded refinement checking: the serial explorer's decision-tree
// DFS, fanned out across a pool of OS worker threads.
//
// Where Explorer (explorer.h) walks every decision path one at a time, the
// ParallelExplorer splits the tree by decision-path *prefix*:
//
//   1. A coordinator replays the first `split_depth` decision levels
//      (Explorer::EnumerateSubtreePrefixes) and emits one work item per
//      reachable prefix, in DFS order. Prefixes are mutually disjoint and
//      jointly exhaustive, so the work items partition the execution space.
//   2. Each worker owns a private Explorer — and therefore its own
//      Instance, Scheduler, and World — and runs the ordinary bounded DFS
//      restricted to its item's subtree (Explorer::RunDfsSubtree). This is
//      safe precisely because Instance factories are required to be
//      deterministic: replaying a prefix reconstructs the same execution on
//      any thread. The verdict and spec-frontier caches (memo.h) are the
//      exception: they are shared across workers, which is sound because
//      cached values are pure functions of their fingerprints — sharing
//      only changes WHO pays for a check, never its outcome.
//   3. Per-item Reports are merged in item (= DFS) order, so the aggregate
//      is deterministic regardless of thread timing: executions, steps,
//      crash counts, and the violation *sequence* are bit-identical to the
//      serial Explorer whenever the serial run does not stop early
//      (max_violations larger than the total violation count, no
//      max_executions truncation). With early stopping, the first
//      max_violations violations still match the serial ones — each
//      subtree contributes at most its first max_violations violations,
//      and the merged list is truncated to the global first
//      max_violations — but the execution count is larger because workers
//      cannot know about violations in other subtrees.
//
// DURABLE RUNS (the robustness layer; see checkpoint.h): the coordinator
// owns the checkpoint file and the stop decision, workers only detect and
// drain. The work list IS a vector of CheckpointSubtree items — resuming
// loads it from the file (no re-enumeration; worker count and split depth
// may differ across the interruption), a fresh run builds it from the
// prefix enumeration. A stop request — user CancelToken, wall deadline,
// memory budget, or the stuck-worker watchdog — is published once into an
// internal token every worker engine polls at decision granularity; each
// worker rolls back its in-flight execution, commits its item's exact
// resume cursor under the state mutex, and exits. The final checkpoint
// then holds: done items with their complete partial Reports, the
// interrupted items with their next decision path, and untouched items
// still pending. Because items are merged in DFS item order and each
// item's partial Report is itself resume-exact (explorer.h), an
// interrupted-then-resumed parallel run reports the same deterministic
// counters as an uninterrupted one.
//
// A maintenance thread (started only when needed) writes periodic
// checkpoints on the configured cadence and watches per-worker heartbeat
// counters: a worker that holds an item but has not completed an execution
// for stuck_worker_timeout_ms gets flagged, a recovery checkpoint is
// flushed (claimed-but-uncommitted items appear at their last durable
// position — re-running a subtree from there is sound, merely redundant),
// and the run is canceled rather than left hanging.
//
// Random mode is partitioned by run count: worker w performs its share of
// random_runs with an independent stream forked from `seed` and w, merged
// in worker order — deterministic for a fixed (seed, num_workers), though
// not trace-for-trace identical to the serial random walk. Random walks
// have no durable cursor, so durability stops end them early (outcome
// tagged, nothing checkpointed).
//
// PCT/swarm mode gets the full durable treatment instead: the work list is
// Explorer::BuildPctItems() — (batch, run-range) slices whose per-run seeds
// are pure functions of (seed, batch, run) — so unlike plain random mode
// the parallel report is bit-identical to the serial one for any worker
// count (dedup counters excepted), and slices checkpoint/resume at run
// granularity exactly like DFS subtrees.
#ifndef PERENNIAL_SRC_REFINE_PARALLEL_EXPLORER_H_
#define PERENNIAL_SRC_REFINE_PARALLEL_EXPLORER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/rand.h"
#include "src/refine/checkpoint.h"
#include "src/refine/explorer.h"
#include "src/refine/run_state.h"

namespace perennial::refine {

template <typename Spec>
class ParallelExplorer {
 public:
  using Factory = typename Explorer<Spec>::Factory;

  // `factory` is invoked concurrently from worker threads; it must be
  // thread-safe in addition to deterministic (the harness factories in
  // src/systems/ qualify: they only read their options struct and build
  // fresh objects).
  ParallelExplorer(Spec spec, Factory factory, ExplorerOptions options)
      : spec_(std::move(spec)), factory_(std::move(factory)), options_(options) {}

  Report Run() {
    internal_cancel_.Reset();
    cause_.store(RunOutcome::kComplete, std::memory_order_relaxed);
    if (options_.mode == ExplorerOptions::Mode::kRandom) {
      return RunRandom();
    }
    if (options_.mode == ExplorerOptions::Mode::kPct) {
      return RunPct();
    }
    return RunExhaustive();
  }

 private:
  using Clock = std::chrono::steady_clock;

  // Worker-side options: progress is reported centrally from global
  // counters, and every durable-run responsibility except detection stays
  // with the coordinator — workers keep the deadline and memory budget
  // (their engines abort mid-execution with exact rollback, which the
  // coordinator cannot do for them) but never touch checkpoint files, and
  // they poll the coordinator's internal token, not the user's (the
  // keep_going callback forwards user cancellation exactly once, through
  // RequestStop).
  ExplorerOptions WorkerOptions() const {
    ExplorerOptions opts = options_;
    opts.progress_callback = nullptr;
    opts.checkpoint_path.clear();
    opts.resume_path.clear();
    opts.checkpoint_every_execs = 0;
    opts.checkpoint_every_secs = 0;
    opts.cancel_after_decisions = 0;
    opts.stuck_worker_timeout_ms = 0;
    opts.cancel_token = &internal_cancel_;
    return opts;
  }

  int WorkerCount(size_t items) const {
    int workers = options_.num_workers > 0 ? options_.num_workers : 1;
    if (static_cast<size_t>(workers) > items) {
      workers = static_cast<int>(items);
    }
    return workers > 0 ? workers : 1;
  }

  // First stop wins; later causes (typically the cascaded kCanceled the
  // internal token induces in every other worker) keep the original tag.
  void RequestStop(RunOutcome cause) {
    RunOutcome expected = RunOutcome::kComplete;
    cause_.compare_exchange_strong(expected, cause, std::memory_order_relaxed);
    internal_cancel_.RequestCancel();
  }

  bool StopRequested() const {
    return cause_.load(std::memory_order_relaxed) != RunOutcome::kComplete;
  }

  Report RunExhaustive() {
    Report aggregate;
    bool enumeration_truncated = false;
    const bool deadline_armed = options_.wall_deadline_ms > 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(options_.wall_deadline_ms);
    // Caches shared across the probe and every worker: a history (or history
    // prefix) checked by one thread is a cache hit for all. Verdicts and
    // frontiers are pure functions of their fingerprint, so cross-thread
    // sharing cannot change any verdict — only Report::histories_deduped
    // becomes timing-dependent (which worker reaches a fingerprint first).
    VerdictCache shared_verdicts;
    typename Explorer<Spec>::FrontierCache shared_frontiers;
    verdict_snapshot_source_ = &shared_verdicts;

    // The work list: resumed from the checkpoint file when possible,
    // otherwise built by prefix enumeration. CheckpointSubtree is used
    // directly so checkpointing is a snapshot of this vector.
    std::vector<CheckpointSubtree> items;
    const bool resumed = TryResume(&items, &shared_verdicts);
    if (!resumed) {
      Explorer<Spec> probe(spec_, factory_, ProbeOptions());
      probe.set_verdict_cache(&shared_verdicts);
      probe.set_frontier_cache(&shared_frontiers);
      // Clamp like num_workers: a non-positive depth degenerates to one
      // subtree (the whole tree) rather than tripping the probe's
      // precondition.
      std::vector<SubtreeWork> prefixes = probe.EnumerateSubtreePrefixes(
          options_.split_depth > 0 ? options_.split_depth : 0, &enumeration_truncated);
      if (probe.stop_cause() != RunOutcome::kComplete) {
        // A durability stop during enumeration: the partition is unusable
        // (its prefixes may not be exhaustive), so the whole tree becomes
        // one pending item — nothing explored yet, everything resumable.
        RequestStop(probe.stop_cause());
        items.assign(1, CheckpointSubtree{});
        WriteSnapshot(items, /*mu=*/nullptr);
        verdict_snapshot_source_ = nullptr;
        aggregate.truncated = true;
        aggregate.outcome = cause_.load(std::memory_order_relaxed);
        return aggregate;
      }
      items.reserve(prefixes.size());
      for (SubtreeWork& w : prefixes) {
        CheckpointSubtree item;
        item.floor = w.prefix.size();
        item.next_path = w.prefix;  // kPending convention: next_path == prefix
        item.prefix = std::move(w.prefix);
        item.por_levels = std::move(w.por_seed);
        items.push_back(std::move(item));
      }
    }

    const int workers = WorkerCount(items.size());
    std::atomic<size_t> next_item{0};
    std::atomic<uint64_t> global_executions{0};
    std::atomic<uint64_t> global_steps{0};
    std::atomic<uint64_t> global_violations{0};
    std::atomic<uint64_t> global_checked{0};
    std::atomic<uint64_t> global_deduped{0};
    std::atomic<uint64_t> global_pruned{0};
    std::atomic<bool> budget_exhausted{false};
    std::mutex progress_mu;
    // Guards every CheckpointSubtree field in `items`: workers commit an
    // item's report + cursor under it, the maintenance thread snapshots
    // the vector under it. (Item CLAIMING is the lock-free next_item
    // cursor; a claimed-but-uncommitted item still shows its last durable
    // state, which is exactly what a recovery snapshot should record.)
    std::mutex state_mu;
    // Per-worker liveness for the watchdog: heartbeats tick once per
    // completed execution, active[w] holds (item index + 1) while a worker
    // owns an item.
    std::vector<std::atomic<uint64_t>> heartbeats(workers);
    std::vector<std::atomic<size_t>> active(workers);

    auto worker_main = [&](int w) {
      Explorer<Spec> engine(spec_, factory_, WorkerOptions());
      engine.set_verdict_cache(&shared_verdicts);
      engine.set_frontier_cache(&shared_frontiers);
      while (true) {
        if (StopRequested() || budget_exhausted.load(std::memory_order_relaxed)) {
          break;
        }
        const size_t i = next_item.fetch_add(1, std::memory_order_relaxed);
        if (i >= items.size()) {
          break;
        }
        SubtreeWork work;
        Report local;
        {
          std::scoped_lock lock(state_mu);
          CheckpointSubtree& item = items[i];
          if (item.state == CheckpointSubtree::State::kDone) {
            continue;  // restored from a checkpoint fully explored
          }
          work.prefix = item.state == CheckpointSubtree::State::kInProgress ? item.next_path
                                                                            : item.prefix;
          work.por_seed = item.por_levels;
          work.floor = item.floor;
          // Resume-exactness: the DFS accumulates ONTO the restored
          // partial, so per-item max_violations/max_executions fire at the
          // same point they would have in the uninterrupted run.
          local = item.partial;
        }
        active[w].store(i + 1, std::memory_order_relaxed);
        uint64_t seen_steps = local.total_steps;
        uint64_t seen_violations = local.violations.size();
        uint64_t seen_checked = local.histories_checked;
        uint64_t seen_deduped = local.histories_deduped;
        uint64_t seen_pruned = local.por_pruned;
        auto keep_going = [&](const Report& r) {
          heartbeats[w].fetch_add(1, std::memory_order_relaxed);
          uint64_t executions = global_executions.fetch_add(1, std::memory_order_relaxed) + 1;
          global_steps.fetch_add(r.total_steps - seen_steps, std::memory_order_relaxed);
          seen_steps = r.total_steps;
          global_violations.fetch_add(r.violations.size() - seen_violations,
                                      std::memory_order_relaxed);
          seen_violations = r.violations.size();
          global_checked.fetch_add(r.histories_checked - seen_checked, std::memory_order_relaxed);
          seen_checked = r.histories_checked;
          global_deduped.fetch_add(r.histories_deduped - seen_deduped, std::memory_order_relaxed);
          seen_deduped = r.histories_deduped;
          global_pruned.fetch_add(r.por_pruned - seen_pruned, std::memory_order_relaxed);
          seen_pruned = r.por_pruned;
          if (options_.progress_callback != nullptr && options_.progress_interval > 0 &&
              executions % options_.progress_interval == 0) {
            std::scoped_lock lock(progress_mu);
            options_.progress_callback(
                ExplorerProgress{executions, global_steps.load(std::memory_order_relaxed),
                                 global_violations.load(std::memory_order_relaxed),
                                 global_checked.load(std::memory_order_relaxed),
                                 global_deduped.load(std::memory_order_relaxed),
                                 global_pruned.load(std::memory_order_relaxed)});
          }
          // Coarse durable-run detection at execution granularity (the
          // worker engine catches the same conditions mid-execution): the
          // user's token and the coordinator deadline are forwarded into
          // the internal token so every other worker drains too.
          if (options_.cancel_token != nullptr && options_.cancel_token->canceled()) {
            RequestStop(RunOutcome::kCanceled);
          }
          if (deadline_armed && Clock::now() >= deadline) {
            RequestStop(RunOutcome::kDeadline);
          }
          if (executions >= options_.max_executions) {
            budget_exhausted.store(true, std::memory_order_relaxed);
            return false;
          }
          return !StopRequested();
        };
        SubtreeCursor cursor;
        engine.RunDfsSubtree(std::move(work), &local, keep_going, &cursor);
        {
          std::scoped_lock lock(state_mu);
          CheckpointSubtree& item = items[i];
          item.partial = std::move(local);
          if (cursor.finished) {
            item.state = CheckpointSubtree::State::kDone;
            item.next_path.clear();
            item.por_levels.clear();
          } else {
            item.state = CheckpointSubtree::State::kInProgress;
            item.next_path = std::move(cursor.next_path);
            item.por_levels = std::move(cursor.por_levels);
            item.floor = cursor.floor;
          }
        }
        active[w].store(0, std::memory_order_relaxed);
        if (engine.stop_cause() != RunOutcome::kComplete) {
          // The engine detected a stop itself (deadline/memory mid-
          // execution, or the internal token); it is sticky-stopped, so
          // publish the cause and retire this worker.
          RequestStop(engine.stop_cause());
          break;
        }
      }
      active[w].store(0, std::memory_order_relaxed);
    };

    // Maintenance thread: periodic checkpoints + stuck-worker watchdog.
    // Started only when either job is configured, so undurable runs pay
    // nothing.
    const bool want_periodic = !options_.checkpoint_path.empty() &&
                               (options_.checkpoint_every_execs > 0 ||
                                options_.checkpoint_every_secs > 0);
    const bool want_watchdog = options_.stuck_worker_timeout_ms > 0;
    std::mutex maint_mu;
    std::condition_variable maint_cv;
    bool maint_done = false;
    std::thread maint;
    if (want_periodic || want_watchdog) {
      maint = std::thread([&] {
        uint64_t tick_ms = 1000;
        if (want_watchdog) {
          tick_ms = std::min(tick_ms, std::max<uint64_t>(options_.stuck_worker_timeout_ms / 4, 5));
        }
        if (want_periodic && options_.checkpoint_every_execs > 0) {
          tick_ms = std::min<uint64_t>(tick_ms, 20);
        }
        std::vector<uint64_t> last_hb(workers, 0);
        std::vector<Clock::time_point> last_beat(workers, Clock::now());
        std::vector<bool> flagged(workers, false);
        uint64_t last_ckpt_execs = 0;
        Clock::time_point last_ckpt_time = Clock::now();
        std::unique_lock lk(maint_mu);
        while (!maint_done) {
          maint_cv.wait_for(lk, std::chrono::milliseconds(tick_ms));
          if (maint_done) {
            break;
          }
          const Clock::time_point now = Clock::now();
          if (want_periodic) {
            bool due = options_.checkpoint_every_execs > 0 &&
                       global_executions.load(std::memory_order_relaxed) >=
                           last_ckpt_execs + options_.checkpoint_every_execs;
            if (!due && options_.checkpoint_every_secs > 0 &&
                now >= last_ckpt_time + std::chrono::seconds(options_.checkpoint_every_secs)) {
              due = true;
            }
            if (due) {
              last_ckpt_execs = global_executions.load(std::memory_order_relaxed);
              last_ckpt_time = now;
              WriteSnapshot(items, &state_mu);
            }
          }
          if (want_watchdog) {
            for (int w = 0; w < workers; ++w) {
              const uint64_t hb = heartbeats[w].load(std::memory_order_relaxed);
              const bool busy = active[w].load(std::memory_order_relaxed) != 0;
              if (!busy || hb != last_hb[w]) {
                last_hb[w] = hb;
                last_beat[w] = now;
                flagged[w] = false;
                continue;
              }
              if (!flagged[w] &&
                  now - last_beat[w] >=
                      std::chrono::milliseconds(options_.stuck_worker_timeout_ms)) {
                flagged[w] = true;
                std::fprintf(stderr,
                             "[parallel-explorer] worker %d stuck on item %zu for %llu ms; "
                             "flushing recovery checkpoint and canceling\n",
                             w, active[w].load(std::memory_order_relaxed) - 1,
                             static_cast<unsigned long long>(options_.stuck_worker_timeout_ms));
                // The claimed-but-uncommitted item appears at its last
                // durable position: re-running it on resume repeats work
                // but never loses or double-counts any (committed partials
                // are the only ones merged).
                WriteSnapshot(items, &state_mu);
                RequestStop(RunOutcome::kCanceled);
              }
            }
          }
        }
      });
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_main, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
    if (maint.joinable()) {
      {
        std::scoped_lock lock(maint_mu);
        maint_done = true;
      }
      maint_cv.notify_all();
      maint.join();
    }

    // Final checkpoint (written on completion too, so a finished file
    // resumes to the full report); then the deterministic DFS-order merge.
    if (!options_.checkpoint_path.empty()) {
      WriteSnapshot(items, /*mu=*/nullptr);
    }
    verdict_snapshot_source_ = nullptr;
    aggregate.truncated = enumeration_truncated;
    aggregate.resumed = resumed;
    for (const CheckpointSubtree& item : items) {
      MergeReport(&aggregate, item.partial);
    }
    TrimReportViolations(&aggregate, options_.max_violations);
    aggregate.outcome = cause_.load(std::memory_order_relaxed);
    return aggregate;
  }

  // PCT/swarm: the same claim-commit worker pool as RunExhaustive, over the
  // slice list BuildPctItems() builds (or the checkpoint restores). Every
  // run's executions depend only on (seed, batch, run index), and slices
  // are merged in list order, so the aggregate is bit-identical to the
  // serial RunPctMode for any worker count — the shared verdict cache only
  // moves Report::histories_deduped between slices (documented exclusion).
  Report RunPct() {
    Report aggregate;
    const bool deadline_armed = options_.wall_deadline_ms > 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(options_.wall_deadline_ms);
    VerdictCache shared_verdicts;
    typename Explorer<Spec>::FrontierCache shared_frontiers;
    verdict_snapshot_source_ = &shared_verdicts;

    std::vector<CheckpointSubtree> items;
    const bool resumed = TryResume(&items, &shared_verdicts);
    if (!resumed) {
      Explorer<Spec> lister(spec_, factory_, options_);
      items = lister.BuildPctItems();
    }

    const int workers = WorkerCount(items.size());
    std::atomic<size_t> next_item{0};
    std::atomic<uint64_t> global_executions{0};
    std::atomic<uint64_t> global_steps{0};
    std::atomic<uint64_t> global_violations{0};
    std::atomic<uint64_t> global_checked{0};
    std::atomic<uint64_t> global_deduped{0};
    std::atomic<uint64_t> global_pruned{0};
    std::mutex progress_mu;
    std::mutex state_mu;  // guards every CheckpointSubtree field in `items`
    std::vector<std::atomic<uint64_t>> heartbeats(workers);
    std::vector<std::atomic<size_t>> active(workers);

    auto worker_main = [&](int w) {
      Explorer<Spec> engine(spec_, factory_, WorkerOptions());
      engine.set_verdict_cache(&shared_verdicts);
      engine.set_frontier_cache(&shared_frontiers);
      while (true) {
        if (StopRequested()) {
          break;
        }
        const size_t i = next_item.fetch_add(1, std::memory_order_relaxed);
        if (i >= items.size()) {
          break;
        }
        uint64_t batch = 0;
        uint64_t start = 0;
        uint64_t hi = 0;
        Report local;
        {
          std::scoped_lock lock(state_mu);
          CheckpointSubtree& item = items[i];
          if (item.state == CheckpointSubtree::State::kDone) {
            continue;
          }
          PCC_ENSURE(item.prefix.size() == 3, "PCT work item: malformed slice");
          batch = item.prefix[0];
          hi = item.prefix[2];
          start = item.state == CheckpointSubtree::State::kInProgress && !item.next_path.empty()
                      ? item.next_path[0]
                      : item.prefix[1];
          // Resume-exactness: the slice accumulates ONTO the restored
          // partial, so per-slice max_violations fires where it would have
          // in the uninterrupted run.
          local = item.partial;
        }
        active[w].store(i + 1, std::memory_order_relaxed);
        uint64_t seen_steps = local.total_steps;
        uint64_t seen_violations = local.violations.size();
        uint64_t seen_checked = local.histories_checked;
        uint64_t seen_deduped = local.histories_deduped;
        uint64_t seen_pruned = local.por_pruned;
        auto keep_going = [&](const Report& r) {
          heartbeats[w].fetch_add(1, std::memory_order_relaxed);
          uint64_t executions = global_executions.fetch_add(1, std::memory_order_relaxed) + 1;
          global_steps.fetch_add(r.total_steps - seen_steps, std::memory_order_relaxed);
          seen_steps = r.total_steps;
          global_violations.fetch_add(r.violations.size() - seen_violations,
                                      std::memory_order_relaxed);
          seen_violations = r.violations.size();
          global_checked.fetch_add(r.histories_checked - seen_checked, std::memory_order_relaxed);
          seen_checked = r.histories_checked;
          global_deduped.fetch_add(r.histories_deduped - seen_deduped, std::memory_order_relaxed);
          seen_deduped = r.histories_deduped;
          global_pruned.fetch_add(r.por_pruned - seen_pruned, std::memory_order_relaxed);
          seen_pruned = r.por_pruned;
          if (options_.progress_callback != nullptr && options_.progress_interval > 0 &&
              executions % options_.progress_interval == 0) {
            std::scoped_lock lock(progress_mu);
            options_.progress_callback(
                ExplorerProgress{executions, global_steps.load(std::memory_order_relaxed),
                                 global_violations.load(std::memory_order_relaxed),
                                 global_checked.load(std::memory_order_relaxed),
                                 global_deduped.load(std::memory_order_relaxed),
                                 global_pruned.load(std::memory_order_relaxed)});
          }
          if (options_.cancel_token != nullptr && options_.cancel_token->canceled()) {
            RequestStop(RunOutcome::kCanceled);
          }
          if (deadline_armed && Clock::now() >= deadline) {
            RequestStop(RunOutcome::kDeadline);
          }
          return !StopRequested();
        };
        uint64_t next_run = start;
        const bool finished = engine.RunPctSlice(batch, start, hi, &local, keep_going, &next_run);
        {
          std::scoped_lock lock(state_mu);
          CheckpointSubtree& item = items[i];
          item.partial = std::move(local);
          if (finished) {
            item.state = CheckpointSubtree::State::kDone;
            item.next_path.clear();
          } else {
            item.state = CheckpointSubtree::State::kInProgress;
            item.next_path = {static_cast<size_t>(next_run)};
          }
        }
        active[w].store(0, std::memory_order_relaxed);
        if (engine.stop_cause() != RunOutcome::kComplete) {
          RequestStop(engine.stop_cause());
          break;
        }
      }
      active[w].store(0, std::memory_order_relaxed);
    };

    // Maintenance thread: same periodic-checkpoint + watchdog jobs as the
    // exhaustive coordinator.
    const bool want_periodic = !options_.checkpoint_path.empty() &&
                               (options_.checkpoint_every_execs > 0 ||
                                options_.checkpoint_every_secs > 0);
    const bool want_watchdog = options_.stuck_worker_timeout_ms > 0;
    std::mutex maint_mu;
    std::condition_variable maint_cv;
    bool maint_done = false;
    std::thread maint;
    if (want_periodic || want_watchdog) {
      maint = std::thread([&] {
        uint64_t tick_ms = 1000;
        if (want_watchdog) {
          tick_ms = std::min(tick_ms, std::max<uint64_t>(options_.stuck_worker_timeout_ms / 4, 5));
        }
        if (want_periodic && options_.checkpoint_every_execs > 0) {
          tick_ms = std::min<uint64_t>(tick_ms, 20);
        }
        std::vector<uint64_t> last_hb(workers, 0);
        std::vector<Clock::time_point> last_beat(workers, Clock::now());
        std::vector<bool> flagged(workers, false);
        uint64_t last_ckpt_execs = 0;
        Clock::time_point last_ckpt_time = Clock::now();
        std::unique_lock lk(maint_mu);
        while (!maint_done) {
          maint_cv.wait_for(lk, std::chrono::milliseconds(tick_ms));
          if (maint_done) {
            break;
          }
          const Clock::time_point now = Clock::now();
          if (want_periodic) {
            bool due = options_.checkpoint_every_execs > 0 &&
                       global_executions.load(std::memory_order_relaxed) >=
                           last_ckpt_execs + options_.checkpoint_every_execs;
            if (!due && options_.checkpoint_every_secs > 0 &&
                now >= last_ckpt_time + std::chrono::seconds(options_.checkpoint_every_secs)) {
              due = true;
            }
            if (due) {
              last_ckpt_execs = global_executions.load(std::memory_order_relaxed);
              last_ckpt_time = now;
              WriteSnapshot(items, &state_mu);
            }
          }
          if (want_watchdog) {
            for (int w = 0; w < workers; ++w) {
              const uint64_t hb = heartbeats[w].load(std::memory_order_relaxed);
              const bool busy = active[w].load(std::memory_order_relaxed) != 0;
              if (!busy || hb != last_hb[w]) {
                last_hb[w] = hb;
                last_beat[w] = now;
                flagged[w] = false;
                continue;
              }
              if (!flagged[w] &&
                  now - last_beat[w] >=
                      std::chrono::milliseconds(options_.stuck_worker_timeout_ms)) {
                flagged[w] = true;
                std::fprintf(stderr,
                             "[parallel-explorer] worker %d stuck on PCT item %zu for %llu ms; "
                             "flushing recovery checkpoint and canceling\n",
                             w, active[w].load(std::memory_order_relaxed) - 1,
                             static_cast<unsigned long long>(options_.stuck_worker_timeout_ms));
                WriteSnapshot(items, &state_mu);
                RequestStop(RunOutcome::kCanceled);
              }
            }
          }
        }
      });
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_main, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
    if (maint.joinable()) {
      {
        std::scoped_lock lock(maint_mu);
        maint_done = true;
      }
      maint_cv.notify_all();
      maint.join();
    }

    if (!options_.checkpoint_path.empty()) {
      WriteSnapshot(items, /*mu=*/nullptr);
    }
    verdict_snapshot_source_ = nullptr;
    aggregate.resumed = resumed;
    for (const CheckpointSubtree& item : items) {
      MergeReport(&aggregate, item.partial);
    }
    TrimReportViolations(&aggregate, options_.max_violations);
    aggregate.outcome = cause_.load(std::memory_order_relaxed);
    return aggregate;
  }

  // The enumeration probe runs coordinator-side before workers exist, so
  // it polls the USER's cancel token (plus its own deadline/memory budget
  // via the usual engine machinery).
  ExplorerOptions ProbeOptions() const {
    ExplorerOptions opts = WorkerOptions();
    opts.cancel_token = options_.cancel_token;
    return opts;
  }

  // Restores the parallel work list from options_.resume_path. Serial and
  // parallel checkpoints interconvert freely: a serial file yields one
  // (possibly in-progress) whole-tree item, and worker count never matters
  // because the items come from the file.
  bool TryResume(std::vector<CheckpointSubtree>* items, VerdictCache* verdicts) {
    if (options_.resume_path.empty()) {
      return false;
    }
    CheckpointData data;
    Status st = LoadCheckpoint(options_.resume_path, ExplorationConfigFp(options_), &data);
    if (!st.ok()) {
      std::fprintf(stderr, "[parallel-explorer] resume rejected, starting fresh: %s\n",
                   st.ToString().c_str());
      return false;
    }
    *items = std::move(data.subtrees);
    for (CheckpointSubtree& item : *items) {
      item.partial.truncated = false;
      item.partial.outcome = RunOutcome::kComplete;
    }
    for (const auto& [fp, verdict] : data.verdicts) {
      verdicts->Insert(fp, verdict, VerdictEntryBytes(verdict));
    }
    return true;
  }

  // Snapshots `items` (under `mu` when workers may still be committing)
  // and writes the checkpoint file. Coordinator-only: workers never see a
  // checkpoint path.
  void WriteSnapshot(const std::vector<CheckpointSubtree>& items, std::mutex* mu) {
    if (options_.checkpoint_path.empty()) {
      return;
    }
    CheckpointData data;
    data.config_fp = ExplorationConfigFp(options_);
    data.parallel = true;
    data.outcome = cause_.load(std::memory_order_relaxed);
    if (mu != nullptr) {
      std::scoped_lock lock(*mu);
      data.subtrees = items;
    } else {
      data.subtrees = items;
    }
    if (options_.dedup_histories && verdict_snapshot_source_ != nullptr) {
      verdict_snapshot_source_->ForEach(
          [&](const Hash128& fp, const std::optional<std::string>& verdict) {
            data.verdicts.emplace_back(fp, verdict);
          });
    }
    Status st = SaveCheckpoint(options_.checkpoint_path, data);
    if (!st.ok()) {
      std::fprintf(stderr, "[parallel-explorer] checkpoint write failed: %s\n",
                   st.ToString().c_str());
    }
  }

  Report RunRandom() {
    const uint64_t runs = options_.random_runs;
    const int workers =
        WorkerCount(static_cast<size_t>(runs < 1'000'000 ? runs : 1'000'000));
    std::vector<Report> worker_reports(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      // Even split; the first (runs % workers) workers take one extra.
      uint64_t share = runs / workers + (static_cast<uint64_t>(w) < runs % workers ? 1 : 0);
      pool.emplace_back([this, w, share, report = &worker_reports[w]] {
        ExplorerOptions opts = WorkerOptions();
        // Random workers poll the user's token directly: there is no
        // keep_going relay in this mode, and random walks are not
        // resumable anyway (no checkpoint to coordinate).
        opts.cancel_token = options_.cancel_token;
        opts.random_runs = share;
        // Independent stream per worker, derived from the user seed.
        uint64_t state = options_.seed + static_cast<uint64_t>(w);
        opts.seed = SplitMix64(state);
        Explorer<Spec> engine(spec_, factory_, opts);
        *report = engine.Run();
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    Report aggregate;
    for (const Report& r : worker_reports) {
      MergeReport(&aggregate, r);
      // Strongest worker outcome wins (RunOutcome is severity-ordered).
      aggregate.outcome = std::max(aggregate.outcome, r.outcome);
    }
    TrimReportViolations(&aggregate, options_.max_violations);
    return aggregate;
  }

  Spec spec_;
  Factory factory_;
  ExplorerOptions options_;
  // Stop fan-out: the first detected cause is recorded here and the token
  // below cancels every worker engine. Mutable per Run().
  std::atomic<RunOutcome> cause_{RunOutcome::kComplete};
  mutable CancelToken internal_cancel_;
  // The shared verdict cache of the CURRENT RunExhaustive, for checkpoint
  // snapshots (set while workers run; null otherwise).
  VerdictCache* verdict_snapshot_source_ = nullptr;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_PARALLEL_EXPLORER_H_
