// Multi-threaded refinement checking: the serial explorer's decision-tree
// DFS, fanned out across a pool of OS worker threads.
//
// Where Explorer (explorer.h) walks every decision path one at a time, the
// ParallelExplorer splits the tree by decision-path *prefix*:
//
//   1. A coordinator replays the first `split_depth` decision levels
//      (Explorer::EnumerateSubtreePrefixes) and emits one work item per
//      reachable prefix, in DFS order. Prefixes are mutually disjoint and
//      jointly exhaustive, so the work items partition the execution space.
//   2. Each worker owns a private Explorer — and therefore its own
//      Instance, Scheduler, and World — and runs the ordinary bounded DFS
//      restricted to its item's subtree (Explorer::RunDfsSubtree). This is
//      safe precisely because Instance factories are required to be
//      deterministic: replaying a prefix reconstructs the same execution on
//      any thread. The verdict and spec-frontier caches (memo.h) are the
//      exception: they are shared across workers, which is sound because
//      cached values are pure functions of their fingerprints — sharing
//      only changes WHO pays for a check, never its outcome.
//   3. Per-item Reports are merged in item (= DFS) order, so the aggregate
//      is deterministic regardless of thread timing: executions, steps,
//      crash counts, and the violation *sequence* are bit-identical to the
//      serial Explorer whenever the serial run does not stop early
//      (max_violations larger than the total violation count, no
//      max_executions truncation). With early stopping, the first
//      max_violations violations still match the serial ones — each
//      subtree contributes at most its first max_violations violations,
//      and the merged list is truncated to the global first
//      max_violations — but the execution count is larger because workers
//      cannot know about violations in other subtrees.
//
// Shared state across workers is limited to atomics (work-item cursor,
// global execution budget, progress counters), the sharded memo caches,
// and a mutex that serializes ExplorerOptions::progress_callback
// invocations.
//
// Random mode is partitioned by run count: worker w performs its share of
// random_runs with an independent stream forked from `seed` and w, merged
// in worker order — deterministic for a fixed (seed, num_workers), though
// not trace-for-trace identical to the serial random walk.
#ifndef PERENNIAL_SRC_REFINE_PARALLEL_EXPLORER_H_
#define PERENNIAL_SRC_REFINE_PARALLEL_EXPLORER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/rand.h"
#include "src/refine/explorer.h"

namespace perennial::refine {

template <typename Spec>
class ParallelExplorer {
 public:
  using Factory = typename Explorer<Spec>::Factory;

  // `factory` is invoked concurrently from worker threads; it must be
  // thread-safe in addition to deterministic (the harness factories in
  // src/systems/ qualify: they only read their options struct and build
  // fresh objects).
  ParallelExplorer(Spec spec, Factory factory, ExplorerOptions options)
      : spec_(std::move(spec)), factory_(std::move(factory)), options_(options) {}

  Report Run() {
    if (options_.mode == ExplorerOptions::Mode::kRandom) {
      return RunRandom();
    }
    return RunExhaustive();
  }

 private:
  // Worker-side options: progress is reported centrally, from global
  // counters, not per worker.
  ExplorerOptions WorkerOptions() const {
    ExplorerOptions opts = options_;
    opts.progress_callback = nullptr;
    return opts;
  }

  int WorkerCount(size_t items) const {
    int workers = options_.num_workers > 0 ? options_.num_workers : 1;
    if (static_cast<size_t>(workers) > items) {
      workers = static_cast<int>(items);
    }
    return workers > 0 ? workers : 1;
  }

  Report RunExhaustive() {
    Report aggregate;
    bool enumeration_truncated = false;
    // Caches shared across the probe and every worker: a history (or history
    // prefix) checked by one thread is a cache hit for all. Verdicts and
    // frontiers are pure functions of their fingerprint, so cross-thread
    // sharing cannot change any verdict — only Report::histories_deduped
    // becomes timing-dependent (which worker reaches a fingerprint first).
    VerdictCache shared_verdicts;
    typename Explorer<Spec>::FrontierCache shared_frontiers;
    std::vector<SubtreeWork> items;
    {
      Explorer<Spec> probe(spec_, factory_, WorkerOptions());
      probe.set_verdict_cache(&shared_verdicts);
      probe.set_frontier_cache(&shared_frontiers);
      // Clamp like num_workers: a non-positive depth degenerates to one
      // subtree (the whole tree) rather than tripping the probe's
      // precondition.
      items = probe.EnumerateSubtreePrefixes(options_.split_depth > 0 ? options_.split_depth : 0,
                                             &enumeration_truncated);
    }
    std::vector<Report> item_reports(items.size());

    std::atomic<size_t> next_item{0};
    std::atomic<uint64_t> global_executions{0};
    std::atomic<uint64_t> global_steps{0};
    std::atomic<uint64_t> global_violations{0};
    std::atomic<uint64_t> global_checked{0};
    std::atomic<uint64_t> global_deduped{0};
    std::atomic<uint64_t> global_pruned{0};
    std::atomic<bool> budget_exhausted{false};
    std::mutex progress_mu;

    auto worker_main = [&] {
      Explorer<Spec> engine(spec_, factory_, WorkerOptions());
      engine.set_verdict_cache(&shared_verdicts);
      engine.set_frontier_cache(&shared_frontiers);
      while (true) {
        size_t i = next_item.fetch_add(1, std::memory_order_relaxed);
        if (i >= items.size() || budget_exhausted.load(std::memory_order_relaxed)) {
          break;
        }
        Report* report = &item_reports[i];
        uint64_t seen_steps = 0;
        uint64_t seen_violations = 0;
        uint64_t seen_checked = 0;
        uint64_t seen_deduped = 0;
        uint64_t seen_pruned = 0;
        auto keep_going = [&](const Report& r) {
          uint64_t executions = global_executions.fetch_add(1, std::memory_order_relaxed) + 1;
          global_steps.fetch_add(r.total_steps - seen_steps, std::memory_order_relaxed);
          seen_steps = r.total_steps;
          global_violations.fetch_add(r.violations.size() - seen_violations,
                                      std::memory_order_relaxed);
          seen_violations = r.violations.size();
          global_checked.fetch_add(r.histories_checked - seen_checked, std::memory_order_relaxed);
          seen_checked = r.histories_checked;
          global_deduped.fetch_add(r.histories_deduped - seen_deduped, std::memory_order_relaxed);
          seen_deduped = r.histories_deduped;
          global_pruned.fetch_add(r.por_pruned - seen_pruned, std::memory_order_relaxed);
          seen_pruned = r.por_pruned;
          if (options_.progress_callback != nullptr && options_.progress_interval > 0 &&
              executions % options_.progress_interval == 0) {
            std::scoped_lock lock(progress_mu);
            options_.progress_callback(
                ExplorerProgress{executions, global_steps.load(std::memory_order_relaxed),
                                 global_violations.load(std::memory_order_relaxed),
                                 global_checked.load(std::memory_order_relaxed),
                                 global_deduped.load(std::memory_order_relaxed),
                                 global_pruned.load(std::memory_order_relaxed)});
          }
          if (executions >= options_.max_executions) {
            budget_exhausted.store(true, std::memory_order_relaxed);
            return false;
          }
          return true;
        };
        engine.RunDfsSubtree(items[i], report, keep_going);
      }
    };

    const int workers = WorkerCount(items.size());
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker_main);
    }
    for (std::thread& t : pool) {
      t.join();
    }

    aggregate.truncated = enumeration_truncated;
    for (const Report& r : item_reports) {
      MergeInto(&aggregate, r);
    }
    TrimViolations(&aggregate);
    return aggregate;
  }

  Report RunRandom() {
    const uint64_t runs = options_.random_runs;
    const int workers =
        WorkerCount(static_cast<size_t>(runs < 1'000'000 ? runs : 1'000'000));
    std::vector<Report> worker_reports(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      // Even split; the first (runs % workers) workers take one extra.
      uint64_t share = runs / workers + (static_cast<uint64_t>(w) < runs % workers ? 1 : 0);
      pool.emplace_back([this, w, share, report = &worker_reports[w]] {
        ExplorerOptions opts = WorkerOptions();
        opts.random_runs = share;
        // Independent stream per worker, derived from the user seed.
        uint64_t state = options_.seed + static_cast<uint64_t>(w);
        opts.seed = SplitMix64(state);
        Explorer<Spec> engine(spec_, factory_, opts);
        *report = engine.Run();
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    Report aggregate;
    for (const Report& r : worker_reports) {
      MergeInto(&aggregate, r);
    }
    TrimViolations(&aggregate);
    return aggregate;
  }

  static void MergeInto(Report* aggregate, const Report& r) {
    aggregate->executions += r.executions;
    aggregate->total_steps += r.total_steps;
    aggregate->crashes_injected += r.crashes_injected;
    aggregate->env_events_fired += r.env_events_fired;
    aggregate->histories_checked += r.histories_checked;
    aggregate->histories_deduped += r.histories_deduped;
    aggregate->por_pruned += r.por_pruned;
    aggregate->spec_states_explored += r.spec_states_explored;
    aggregate->truncated = aggregate->truncated || r.truncated;
    aggregate->violations.insert(aggregate->violations.end(), r.violations.begin(),
                                 r.violations.end());
  }

  void TrimViolations(Report* aggregate) const {
    if (aggregate->violations.size() > static_cast<size_t>(options_.max_violations)) {
      aggregate->violations.resize(static_cast<size_t>(options_.max_violations));
    }
  }

  Spec spec_;
  Factory factory_;
  ExplorerOptions options_;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_PARALLEL_EXPLORER_H_
