#include "src/refine/minimize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace perennial::refine {

namespace {

// One decision per line, matching ScheduleDecisionLabel's vocabulary but
// parse-friendly: "t <tid>", "crash", "env <idx>", "observe".
std::string DecisionLine(const ScheduleDecision& d) {
  switch (d.kind) {
    case detail::AltKind::kThread:
      return "t " + std::to_string(d.thread);
    case detail::AltKind::kCrash:
      return "crash";
    case detail::AltKind::kEnv:
      return "env " + std::to_string(d.env);
    case detail::AltKind::kProceed:
      return "observe";
  }
  return "observe";
}

bool ParseDecisionLine(const std::string& line, ScheduleDecision* d) {
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag)) {
    return false;
  }
  if (tag == "crash") {
    d->kind = detail::AltKind::kCrash;
    return true;
  }
  if (tag == "observe") {
    d->kind = detail::AltKind::kProceed;
    return true;
  }
  if (tag == "t") {
    d->kind = detail::AltKind::kThread;
    return static_cast<bool>(in >> d->thread);
  }
  if (tag == "env") {
    d->kind = detail::AltKind::kEnv;
    return static_cast<bool>(in >> d->env);
  }
  return false;
}

}  // namespace

std::string FormatTrace(const TraceFile& trace) {
  std::string out = "pcc-trace v1\n";
  out += "run_id " + trace.run_id + "\n";
  out += "kind " + trace.kind + "\n";
  out += "seed " + std::to_string(trace.seed) + "\n";
  out += "decisions " + std::to_string(trace.schedule.size()) + "\n";
  for (const ScheduleDecision& d : trace.schedule) {
    out += DecisionLine(d) + "\n";
  }
  return out;
}

Status ParseTrace(const std::string& text, TraceFile* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "pcc-trace v1") {
    return Status::Invalid("trace: missing 'pcc-trace v1' header");
  }
  TraceFile trace;
  uint64_t decisions = 0;
  bool have_decisions = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key.empty()) {
      continue;  // blank line
    }
    if (key == "run_id") {
      ls >> trace.run_id;
    } else if (key == "kind") {
      ls >> trace.kind;
    } else if (key == "seed") {
      if (!(ls >> trace.seed)) {
        return Status::Invalid("trace: bad seed line");
      }
    } else if (key == "decisions") {
      if (!(ls >> decisions)) {
        return Status::Invalid("trace: bad decisions line");
      }
      have_decisions = true;
      break;
    } else {
      return Status::Invalid("trace: unknown key '" + key + "'");
    }
  }
  if (!have_decisions) {
    return Status::Invalid("trace: missing decisions count");
  }
  trace.schedule.reserve(decisions < (1u << 20) ? decisions : 0);
  for (uint64_t i = 0; i < decisions; ++i) {
    if (!std::getline(in, line)) {
      return Status::Invalid("trace: truncated after " + std::to_string(i) + " of " +
                             std::to_string(decisions) + " decisions");
    }
    ScheduleDecision d;
    if (!ParseDecisionLine(line, &d)) {
      return Status::Invalid("trace: bad decision line '" + line + "'");
    }
    trace.schedule.push_back(d);
  }
  *out = std::move(trace);
  return Status::Ok();
}

Status SaveTrace(const std::string& path, const TraceFile& trace) {
  const std::string text = FormatTrace(trace);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Failed("trace: cannot create " + path + ": " + std::strerror(errno));
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0) {
    ok = false;
  }
  if (!ok) {
    return Status::Failed("trace: write failed for " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status LoadTrace(const std::string& path, TraceFile* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("trace: cannot open " + path);
  }
  std::string text;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return Status::Failed("trace: read failed for " + path);
  }
  return ParseTrace(text, out);
}

}  // namespace perennial::refine
