#include "src/refine/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/proc/footprint.h"

namespace perennial::refine {
namespace {

constexpr char kMagic[4] = {'P', 'C', 'C', 'K'};
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
  }
  return h;
}

// ---- writer ----

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutSizeVec(std::string* out, const std::vector<size_t>& v) {
  PutU64(out, v.size());
  for (size_t x : v) {
    PutU64(out, static_cast<uint64_t>(x));
  }
}

void PutFootprint(std::string* out, const proc::Footprint& fp) {
  PutU8(out, fp.recorded ? 1 : 0);
  PutU8(out, fp.opaque ? 1 : 0);
  PutU64(out, fp.accesses.size());
  for (const proc::Footprint::Access& a : fp.accesses) {
    PutU64(out, a.resource);
    PutU8(out, a.write ? 1 : 0);
  }
}

void PutPorLevels(std::string* out, const std::vector<detail::PorLevel>& levels) {
  PutU64(out, levels.size());
  for (const detail::PorLevel& level : levels) {
    PutU64(out, level.tried.size());
    for (const detail::TriedAlt& t : level.tried) {
      PutU8(out, static_cast<uint8_t>(t.kind));
      PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(t.thread)));
      PutFootprint(out, t.footprint);
    }
  }
}

void PutReport(std::string* out, const Report& r) {
  PutU64(out, r.executions);
  PutU64(out, r.total_steps);
  PutU64(out, r.crashes_injected);
  PutU64(out, r.env_events_fired);
  PutU64(out, r.histories_checked);
  PutU64(out, r.histories_deduped);
  PutU64(out, r.por_pruned);
  PutU64(out, r.spec_states_explored);
  PutU8(out, r.truncated ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(r.outcome));
  PutU64(out, r.violations.size());
  for (const Violation& v : r.violations) {
    PutString(out, v.kind);
    PutString(out, v.detail);
    PutString(out, v.trace);
    PutU64(out, v.schedule.size());
    for (const ScheduleDecision& d : v.schedule) {
      PutU8(out, static_cast<uint8_t>(d.kind));
      PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(d.thread)));
      PutU32(out, d.env);
    }
  }
}

std::string SerializePayload(const CheckpointData& data) {
  std::string out;
  PutU8(&out, data.parallel ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(data.outcome));
  PutU64(&out, data.subtrees.size());
  for (const CheckpointSubtree& s : data.subtrees) {
    PutU8(&out, static_cast<uint8_t>(s.state));
    PutSizeVec(&out, s.prefix);
    PutU64(&out, static_cast<uint64_t>(s.floor));
    PutSizeVec(&out, s.next_path);
    PutPorLevels(&out, s.por_levels);
    PutReport(&out, s.partial);
  }
  PutU64(&out, data.verdicts.size());
  for (const auto& [fp, verdict] : data.verdicts) {
    PutU64(&out, fp.hi);
    PutU64(&out, fp.lo);
    PutU8(&out, verdict.has_value() ? 1 : 0);
    if (verdict.has_value()) {
      PutString(&out, *verdict);
    }
  }
  return out;
}

// ---- reader (every Get bounds-checks; failure poisons the cursor) ----

struct Cursor {
  const std::string* bytes;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    if (failed || bytes->size() - pos < n) {
      failed = true;
      return false;
    }
    return true;
  }

  // Overflow-safe bound for `count` elements of >= elem_bytes each; rejects
  // hostile counts before any reserve().
  bool NeedCount(uint64_t count, size_t elem_bytes) {
    if (failed || count > (bytes->size() - pos) / elem_bytes) {
      failed = true;
      return false;
    }
    return true;
  }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>((*bytes)[pos++]);
  }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>((*bytes)[pos++])) << (8 * i);
    }
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>((*bytes)[pos++])) << (8 * i);
    }
    return v;
  }

  std::string GetString() {
    uint64_t n = GetU64();
    if (!Need(n)) return std::string();
    std::string s = bytes->substr(pos, n);
    pos += n;
    return s;
  }

  std::vector<size_t> GetSizeVec() {
    uint64_t n = GetU64();
    std::vector<size_t> v;
    if (!NeedCount(n, 8)) return v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      v.push_back(static_cast<size_t>(GetU64()));
    }
    return v;
  }
};

proc::Footprint GetFootprint(Cursor* c) {
  proc::Footprint fp;
  fp.recorded = c->GetU8() != 0;
  fp.opaque = c->GetU8() != 0;
  uint64_t n = c->GetU64();
  if (!c->NeedCount(n, 9)) return fp;
  fp.accesses.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    proc::Footprint::Access a;
    a.resource = c->GetU64();
    a.write = c->GetU8() != 0;
    fp.accesses.push_back(a);
  }
  return fp;
}

std::vector<detail::PorLevel> GetPorLevels(Cursor* c) {
  std::vector<detail::PorLevel> levels;
  uint64_t nlevels = c->GetU64();
  if (!c->NeedCount(nlevels, 1)) return levels;
  levels.reserve(nlevels);
  for (uint64_t i = 0; i < nlevels && !c->failed; ++i) {
    detail::PorLevel level;
    uint64_t ntried = c->GetU64();
    if (!c->NeedCount(ntried, 12)) break;
    level.tried.reserve(ntried);
    for (uint64_t j = 0; j < ntried && !c->failed; ++j) {
      detail::TriedAlt t;
      uint8_t kind = c->GetU8();
      if (kind > static_cast<uint8_t>(detail::AltKind::kProceed)) {
        c->failed = true;
        break;
      }
      t.kind = static_cast<detail::AltKind>(kind);
      t.thread = static_cast<int>(static_cast<int64_t>(c->GetU64()));
      t.footprint = GetFootprint(c);
      level.tried.push_back(std::move(t));
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

Report GetReport(Cursor* c) {
  Report r;
  r.executions = c->GetU64();
  r.total_steps = c->GetU64();
  r.crashes_injected = c->GetU64();
  r.env_events_fired = c->GetU64();
  r.histories_checked = c->GetU64();
  r.histories_deduped = c->GetU64();
  r.por_pruned = c->GetU64();
  r.spec_states_explored = c->GetU64();
  r.truncated = c->GetU8() != 0;
  uint32_t outcome = c->GetU32();
  if (outcome > static_cast<uint32_t>(RunOutcome::kOom)) {
    c->failed = true;
    return r;
  }
  r.outcome = static_cast<RunOutcome>(outcome);
  uint64_t nviol = c->GetU64();
  if (!c->NeedCount(nviol, 24)) return r;
  r.violations.reserve(nviol);
  for (uint64_t i = 0; i < nviol && !c->failed; ++i) {
    Violation v;
    v.kind = c->GetString();
    v.detail = c->GetString();
    v.trace = c->GetString();
    uint64_t nsched = c->GetU64();
    if (!c->NeedCount(nsched, 13)) return r;
    v.schedule.reserve(nsched);
    for (uint64_t j = 0; j < nsched && !c->failed; ++j) {
      ScheduleDecision d;
      uint8_t kind = c->GetU8();
      if (kind > static_cast<uint8_t>(detail::AltKind::kProceed)) {
        c->failed = true;
        break;
      }
      d.kind = static_cast<detail::AltKind>(kind);
      d.thread = static_cast<int>(static_cast<int64_t>(c->GetU64()));
      d.env = c->GetU32();
      v.schedule.push_back(d);
    }
    r.violations.push_back(std::move(v));
  }
  return r;
}

bool ParsePayload(const std::string& payload, CheckpointData* out) {
  Cursor c{&payload};
  CheckpointData data;
  data.parallel = c.GetU8() != 0;
  uint32_t outcome = c.GetU32();
  if (outcome > static_cast<uint32_t>(RunOutcome::kOom)) {
    return false;
  }
  data.outcome = static_cast<RunOutcome>(outcome);
  uint64_t nsub = c.GetU64();
  if (!c.NeedCount(nsub, 1)) return false;
  data.subtrees.reserve(nsub);
  for (uint64_t i = 0; i < nsub && !c.failed; ++i) {
    CheckpointSubtree s;
    uint8_t state = c.GetU8();
    if (state > static_cast<uint8_t>(CheckpointSubtree::State::kDone)) {
      return false;
    }
    s.state = static_cast<CheckpointSubtree::State>(state);
    s.prefix = c.GetSizeVec();
    s.floor = static_cast<size_t>(c.GetU64());
    s.next_path = c.GetSizeVec();
    s.por_levels = GetPorLevels(&c);
    s.partial = GetReport(&c);
    data.subtrees.push_back(std::move(s));
  }
  uint64_t nverd = c.GetU64();
  if (!c.NeedCount(nverd, 17)) return false;
  data.verdicts.reserve(nverd);
  for (uint64_t i = 0; i < nverd && !c.failed; ++i) {
    Hash128 fp;
    fp.hi = c.GetU64();
    fp.lo = c.GetU64();
    std::optional<std::string> verdict;
    if (c.GetU8() != 0) {
      verdict = c.GetString();
    }
    data.verdicts.emplace_back(fp, std::move(verdict));
  }
  if (c.failed || c.pos != payload.size()) {
    return false;
  }
  *out = std::move(data);
  return true;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::Failed(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const CheckpointData& data) {
  std::string payload = SerializePayload(data);
  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  file.append(kMagic, sizeof(kMagic));
  PutU32(&file, kCheckpointVersion);
  PutU64(&file, data.config_fp);
  PutU64(&file, payload.size());
  PutU64(&file, Fnv1a64(payload));
  file.append(payload);

  // §9.1 shadow copy: the temp file becomes durable before the rename makes
  // it visible, so `path` always names a complete checkpoint (old or new).
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return IoError("checkpoint: cannot create", tmp);
  }
  bool write_ok = std::fwrite(file.data(), 1, file.size(), f) == file.size();
  write_ok = write_ok && std::fflush(f) == 0;
  write_ok = write_ok && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0) {
    write_ok = false;
  }
  if (!write_ok) {
    ::unlink(tmp.c_str());
    return IoError("checkpoint: write failed for", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return IoError("checkpoint: rename failed for", tmp);
  }
  // Durable name->inode binding: fsync the containing directory.
  std::string dir = path;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::Ok();
}

Status LoadCheckpoint(const std::string& path, uint64_t expected_config_fp, CheckpointData* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("checkpoint: cannot open " + path);
  }
  std::string file;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    file.append(buf, n);
  }
  bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return IoError("checkpoint: read failed for", path);
  }

  if (file.size() < kHeaderBytes) {
    return Status::Invalid("checkpoint: truncated header in " + path);
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("checkpoint: bad magic in " + path);
  }
  Cursor header{&file, sizeof(kMagic)};
  uint32_t version = header.GetU32();
  if (version != kCheckpointVersion) {
    return Status::Invalid("checkpoint: version " + std::to_string(version) + " in " + path +
                           " (expected " + std::to_string(kCheckpointVersion) + ")");
  }
  uint64_t config_fp = header.GetU64();
  uint64_t payload_len = header.GetU64();
  uint64_t payload_sum = header.GetU64();
  if (file.size() - kHeaderBytes != payload_len) {
    return Status::Invalid("checkpoint: torn payload in " + path + " (have " +
                           std::to_string(file.size() - kHeaderBytes) + " bytes, header says " +
                           std::to_string(payload_len) + ")");
  }
  std::string payload = file.substr(kHeaderBytes);
  if (Fnv1a64(payload) != payload_sum) {
    return Status::Invalid("checkpoint: payload checksum mismatch in " + path);
  }
  if (expected_config_fp != 0 && config_fp != expected_config_fp) {
    return Status::Failed("checkpoint: " + path + " was written by a run with a different " +
                          "exploration configuration");
  }
  CheckpointData data;
  if (!ParsePayload(payload, &data)) {
    return Status::Invalid("checkpoint: malformed payload in " + path);
  }
  data.config_fp = config_fp;
  *out = std::move(data);
  return Status::Ok();
}

}  // namespace perennial::refine
