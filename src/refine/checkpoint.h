// Durable-run checkpoints for the refinement checker.
//
// A checkpoint captures everything an interrupted exploration needs to
// continue exactly where it stopped: one entry per work-item subtree (the
// partition prefix, the DFS odometer's next decision path, the sleep-set
// POR bookkeeping valid along it, and the partial Report the subtree has
// accumulated), plus the verdict-cache contents when history dedup is on —
// the dedup counters are part of the bit-identity contract, so the cache a
// resumed run starts from must equal the one the interrupted run held.
// Per-execution state (env budgets, crash counts, thread schedules) is NOT
// serialized: it is a pure function of the decision path and is rebuilt by
// deterministic replay, the same mechanism the DFS uses on every iteration.
//
// The file is written with the paper's §9.1 shadow-copy pattern — the
// checker for crash-safe systems is itself crash-safe: serialize to
// `path.tmp`, fsync, rename over `path`. A crash mid-write leaves either
// the old complete file or the new complete file, never a torn one; a torn
// or tampered file that does slip through (e.g. a crashed first write with
// no predecessor) is caught by the payload checksum and length checks on
// load, and the engines then restart from scratch.
//
// Layout (all integers little-endian):
//   magic 'PCCK' | version u32 | config_fp u64 | payload_len u64
//   | payload_fnv1a64 u64 | payload bytes
// The config fingerprint hashes every option that shapes the decision tree
// (bounds, POR, dedup, mode — not worker counts or durability knobs), so a
// checkpoint can only resume a run exploring the same space; worker count
// and split depth may differ freely, since resumed work items come from the
// file, not from re-enumeration.
#ifndef PERENNIAL_SRC_REFINE_CHECKPOINT_H_
#define PERENNIAL_SRC_REFINE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/status.h"
#include "src/refine/run_state.h"

namespace perennial::refine {

// v2: Violations carry their recorded decision schedule (the replayable
// witness minimize.h shrinks), and PCT/swarm runs reuse CheckpointSubtree
// with prefix = {batch, lo, hi} and next_path = {next_run}.
inline constexpr uint32_t kCheckpointVersion = 2;

// One work-item subtree's durable state. The engines use this struct
// directly as their in-memory work list, so checkpointing is a snapshot of
// the list, not a translation.
struct CheckpointSubtree {
  enum class State : uint8_t { kPending = 0, kInProgress = 1, kDone = 2 };

  State state = State::kPending;
  // The partition prefix this item owns (empty for the serial whole-tree
  // item) and the odometer floor pinning it.
  std::vector<size_t> prefix;
  size_t floor = 0;
  // kInProgress only: the exact decision path of the next execution to run
  // and the POR level bookkeeping valid along it. For kPending items these
  // hold the enumeration-provided seed (next_path == prefix).
  std::vector<size_t> next_path;
  std::vector<detail::PorLevel> por_levels;
  // The subtree's Report so far (complete for kDone).
  Report partial;
};

struct CheckpointData {
  uint64_t config_fp = 0;
  bool parallel = false;  // engine that wrote it (informational; either resumes)
  RunOutcome outcome = RunOutcome::kComplete;
  std::vector<CheckpointSubtree> subtrees;
  // Verdict-cache contents at save time (dedup_histories runs only).
  std::vector<std::pair<Hash128, std::optional<std::string>>> verdicts;

  bool AllDone() const {
    for (const CheckpointSubtree& s : subtrees) {
      if (s.state != CheckpointSubtree::State::kDone) {
        return false;
      }
    }
    return true;
  }
};

// Serializes `data` and atomically replaces `path` (temp + fsync + rename).
// Any failure leaves the previous file (if any) intact.
Status SaveCheckpoint(const std::string& path, const CheckpointData& data);

// Loads and validates `path`. Rejects short/torn files, bad magic, version
// mismatches, checksum mismatches, trailing garbage, and — when
// expected_config_fp != 0 — checkpoints written by a differently-configured
// run. On any non-ok status `*out` is untouched.
Status LoadCheckpoint(const std::string& path, uint64_t expected_config_fp, CheckpointData* out);

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_CHECKPOINT_H_
