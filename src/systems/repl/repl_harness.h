// Checker harness for the replicated disk: builds refine::Instance
// configurations binding the implementation to its spec.
#ifndef PERENNIAL_SRC_SYSTEMS_REPL_REPL_HARNESS_H_
#define PERENNIAL_SRC_SYSTEMS_REPL_REPL_HARNESS_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/fault/fault.h"
#include "src/fault/fault_events.h"
#include "src/refine/explorer.h"
#include "src/systems/repl/repl_spec.h"
#include "src/systems/repl/replicated_disk.h"

namespace perennial::systems {

struct ReplHarnessOptions {
  uint64_t num_blocks = 1;
  std::vector<std::vector<ReplSpec::Op>> client_ops;
  ReplicatedDisk::Mutations mutations;
  bool with_disk1_failure_event = false;
  bool with_disk2_failure_event = false;
  // Environment faults (transient I/O errors, fail-slow, ...) exposed as
  // explorer env alternatives. Default plan: no faults. Use
  // ReplicatedDisk::kDisk1/kDisk2 as FaultPlan::target to aim at one disk.
  fault::FaultPlan fault_plan;
  // When false, the §5.1 crash invariant is not registered with the
  // explorer, so defects surface purely as refinement (linearizability)
  // violations — useful to demonstrate the spec-level symptom of a bug the
  // invariant would otherwise flag first.
  bool check_crash_invariants = true;
  // Observe every address at the end to pin down the final durable state.
  bool observe_all = true;
  // Read each address this many times during observation; with a failure
  // event armed, repeated reads expose divergence between the disks (§3.1).
  int observe_repeats = 1;
};

inline refine::Instance<ReplSpec> MakeReplInstance(const ReplHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<fault::FaultSchedule> faults;
    std::unique_ptr<ReplicatedDisk> rd;
  };
  auto bundle = std::make_shared<Bundle>();
  if (options.fault_plan.AnyBudget()) {
    bundle->faults = std::make_unique<fault::FaultSchedule>(options.fault_plan);
  }
  bundle->rd = std::make_unique<ReplicatedDisk>(&bundle->world, options.num_blocks,
                                                options.mutations, bundle->faults.get());
  ReplicatedDisk* rd = bundle->rd.get();

  refine::Instance<ReplSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = options.check_crash_invariants ? &rd->crash_invariants() : nullptr;
  inst.client_ops = options.client_ops;
  inst.run_op = [rd](int, uint64_t op_id, ReplSpec::Op op) -> proc::Task<uint64_t> {
    if (op.is_write) {
      co_await rd->Write(op.a, op.v, op_id);
      co_return 0;
    }
    co_return co_await rd->Read(op.a);
  };
  inst.recover = [rd](refine::History<ReplSpec>* history) -> proc::Task<void> {
    co_await rd->Recover([history](uint64_t op_id) { history->Helped(op_id); });
  };
  if (options.observe_all) {
    for (int repeat = 0; repeat < options.observe_repeats; ++repeat) {
      for (uint64_t a = 0; a < options.num_blocks; ++a) {
        inst.observer_ops.push_back(ReplSpec::MakeRead(a));
      }
    }
  }
  if (options.with_disk1_failure_event) {
    inst.env_events.push_back(refine::EnvEvent{"fail-d1", 1, [rd] { rd->FailDisk1(); }});
  }
  if (options.with_disk2_failure_event) {
    inst.env_events.push_back(refine::EnvEvent{"fail-d2", 1, [rd] { rd->FailDisk2(); }});
  }
  if (bundle->faults != nullptr) {
    fault::AddFaultEvents(options.fault_plan, bundle->faults.get(), &inst);
  }
  return inst;
}

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_REPL_REPL_HARNESS_H_
