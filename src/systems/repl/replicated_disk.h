// The concurrent, crash-safe replicated disk (paper §1, §3, §5, Figure 1).
//
// Two physical disks behave as one logical disk that tolerates a single
// disk failure: writes go to both disks under a per-address lock, reads go
// to disk 1 and fail over to disk 2, and recovery copies disk 1 onto
// disk 2 to complete any write a crash interrupted (recovery helping).
//
// The Perennial disciplines appear as runtime capabilities:
//  * per-address recovery leases on d1[a] and d2[a], held by the lock and
//    verified on every write (§5.3);
//  * a helping token deposited while the two writes are in flight and
//    consumed by recovery when it completes the write (§5.4);
//  * the crash invariant "disks agree at every address unless a helping
//    token records the in-flight write" (§5.1), checkable at every step.
//
// Environment faults (src/fault): the disks are FaultyDisk instances, so a
// harness-attached FaultSchedule can strike any read or write with a
// transient kUnavailable error or a fail-slow delay. The library tolerates
// them by retrying with bounded backoff (fault/retry.h); only fail-stop
// kFailed — a genuinely dead disk — makes it give up on a device. The
// `no_retry` mutation re-creates the classic bug of treating a transient
// error as success: a dropped disk-1 write leaves the disks diverged with
// no helping token, which the checker catches.
#ifndef PERENNIAL_SRC_SYSTEMS_REPL_REPLICATED_DISK_H_
#define PERENNIAL_SRC_SYSTEMS_REPL_REPLICATED_DISK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cap/crash_invariant.h"
#include "src/cap/helping.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/fault/fault.h"
#include "src/fault/faulty_disk.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

class ReplicatedDisk {
 public:
  // FaultPlan::target values for this system's two devices.
  static constexpr int kDisk1 = 1;
  static constexpr int kDisk2 = 2;

  // Mutations for the §9.5-style bug-finding evaluation: each re-creates a
  // defect the verification methodology must reject.
  struct Mutations {
    bool skip_locking = false;       // rd_write without the per-address lock
    bool skip_second_write = false;  // rd_write updates only disk 1
    bool recovery_zeroes = false;    // recovery "syncs" by zeroing both disks
    bool skip_recovery = false;      // recovery does nothing
    bool no_retry = false;           // transient I/O errors treated as success
  };

  ReplicatedDisk(goose::World* world, uint64_t num_blocks, Mutations mutations,
                 fault::FaultSchedule* faults = nullptr);
  ReplicatedDisk(goose::World* world, uint64_t num_blocks)
      : ReplicatedDisk(world, num_blocks, Mutations{}) {}

  uint64_t size() const { return d1_.size(); }

  // rd_read (Figure 4): returns the logical value at `a`; retries transient
  // errors and fails over to disk 2 when disk 1 has failed.
  proc::Task<uint64_t> Read(uint64_t a);

  // rd_write (Figure 4): durably stores v at `a` on both disks. `op_id`
  // identifies this operation instance for recovery helping.
  proc::Task<void> Write(uint64_t a, uint64_t v, uint64_t op_id);

  // rd_recover (Figure 5): copies disk 1 onto disk 2 and rebuilds volatile
  // state (locks, leases). `helped` is called with the op_id of any write
  // recovery completed on a crashed thread's behalf.
  proc::Task<void> Recover(std::function<void(uint64_t)> helped);

  // Fail-stop injection.
  void FailDisk1() { d1_.Fail(); }
  void FailDisk2() { d2_.Fail(); }

  // The crash invariant (§5.1): registered once, checked by the explorer.
  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  // Harness: logical durable value at `a` (disk 1 unless failed).
  uint64_t PeekLogical(uint64_t a) const;

 private:
  // Volatile per-address state: the lock and the leases it protects.
  // Rebuilt from durable state by Init/Recover (a crash destroys it).
  struct AddrState {
    std::unique_ptr<goose::Mutex> mu;
    cap::Lease lease1;
    cap::Lease lease2;
  };

  // (Re-)creates locks and issues fresh leases for every address.
  void InitVolatile();

  // Single disk operation with the library's retry policy (transient
  // kUnavailable errors are retried with bounded backoff; kFailed is final).
  // The no_retry mutation degrades both to a single attempt.
  proc::Task<Result<disk::Block>> RetryRead(fault::FaultyDisk& d, uint64_t a);
  proc::Task<Status> RetryWrite(fault::FaultyDisk& d, uint64_t a, disk::Block value);

  goose::World* world_;
  fault::FaultyDisk d1_;
  fault::FaultyDisk d2_;
  cap::LeaseRegistry leases_;
  cap::HelpRegistry help_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::vector<AddrState> addrs_;
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_REPL_REPLICATED_DISK_H_
