#include "src/systems/repl/replicated_disk.h"

#include <string>
#include <utility>

#include "src/fault/retry.h"

namespace perennial::systems {

namespace {
std::string Key1(uint64_t a) { return "d1[" + std::to_string(a) + "]"; }
std::string Key2(uint64_t a) { return "d2[" + std::to_string(a) + "]"; }
std::string HelpKey(uint64_t a) { return "addr:" + std::to_string(a); }
}  // namespace

ReplicatedDisk::ReplicatedDisk(goose::World* world, uint64_t num_blocks, Mutations mutations,
                               fault::FaultSchedule* faults)
    : world_(world),
      d1_(world, num_blocks, disk::BlockOfU64(0), faults, kDisk1),
      d2_(world, num_blocks, disk::BlockOfU64(0), faults, kDisk2),
      leases_(world),
      mutations_(mutations) {
  InitVolatile();
  // Crash invariant (§5.4): at every address, the two disks agree — unless
  // a helping token records a write in flight, or a disk has failed (a
  // failed disk no longer carries state).
  invariants_.Register("disks-agree-or-pending-write", [this] {
    if (d1_.failed() || d2_.failed()) {
      return true;
    }
    for (uint64_t a = 0; a < d1_.size(); ++a) {
      if (d1_.PeekBlock(a) != d2_.PeekBlock(a) && !help_.Has(HelpKey(a))) {
        return false;
      }
    }
    return true;
  });
}

void ReplicatedDisk::InitVolatile() {
  addrs_.clear();
  addrs_.resize(d1_.size());
  for (uint64_t a = 0; a < addrs_.size(); ++a) {
    addrs_[a].mu = std::make_unique<goose::Mutex>(world_);
    addrs_[a].lease1 = leases_.Issue(Key1(a));
    addrs_[a].lease2 = leases_.Issue(Key2(a));
  }
}

proc::Task<Result<disk::Block>> ReplicatedDisk::RetryRead(fault::FaultyDisk& d, uint64_t a) {
  if (mutations_.no_retry) {
    co_return co_await d.Read(a);
  }
  co_return co_await fault::RetryWithBackoff(fault::RetryPolicy{},
                                             [&d, a] { return d.Read(a); });
}

proc::Task<Status> ReplicatedDisk::RetryWrite(fault::FaultyDisk& d, uint64_t a,
                                              disk::Block value) {
  if (mutations_.no_retry) {
    co_return co_await d.Write(a, std::move(value));
  }
  co_return co_await fault::RetryWithBackoff(fault::RetryPolicy{},
                                             [&d, a, &value] { return d.Write(a, value); });
}

proc::Task<uint64_t> ReplicatedDisk::Read(uint64_t a) {
  AddrState& addr = addrs_[a];
  co_await addr.mu->Lock();
  Result<disk::Block> r = co_await RetryRead(d1_, a);
  if (!r.ok()) {
    r = co_await RetryRead(d2_, a);
  }
  PCC_ENSURE(r.ok(), "replicated disk: both disks failed");
  uint64_t v = disk::U64OfBlock(r.value());
  co_await addr.mu->Unlock();
  co_return v;
}

proc::Task<void> ReplicatedDisk::Write(uint64_t a, uint64_t v, uint64_t op_id) {
  AddrState& addr = addrs_[a];
  if (!mutations_.skip_locking) {
    co_await addr.mu->Lock();
  }
  // Rule 1 of §5.3: updating the durable blocks requires the leases the
  // lock protects.
  leases_.Verify(addr.lease1, "rd_write d1");
  leases_.Verify(addr.lease2, "rd_write d2");
  // Deposit the helping token in the same atomic step as the first write
  // becomes visible: from here until the second write lands, a crash
  // leaves the disks out of sync and recovery completes this operation.
  // Transient faults are retried inside RetryWrite; only fail-stop kFailed
  // falls through, and a dead disk carries no state to diverge.
  (void)co_await RetryWrite(d1_, a, disk::BlockOfU64(v));
  help_.Deposit(HelpKey(a), cap::PendingOp{-1, op_id});
  if (!mutations_.skip_second_write) {
    (void)co_await RetryWrite(d2_, a, disk::BlockOfU64(v));
  }
  help_.Withdraw(HelpKey(a));
  if (!mutations_.skip_locking) {
    co_await addr.mu->Unlock();
  }
}

proc::Task<void> ReplicatedDisk::Recover(std::function<void(uint64_t)> helped) {
  if (mutations_.skip_recovery) {
    InitVolatile();
    co_return;
  }
  if (mutations_.recovery_zeroes) {
    // The broken recovery from §1: "make the disks in sync by zeroing
    // them both" — it restores the invariant but destroys data.
    for (uint64_t a = 0; a < d1_.size(); ++a) {
      (void)co_await d1_.Write(a, disk::BlockOfU64(0));
      (void)co_await d2_.Write(a, disk::BlockOfU64(0));
    }
    help_.Clear();
    InitVolatile();
    co_return;
  }
  // Figure 5: copy every block of disk 1 onto disk 2. Completing the copy
  // at `a` consumes the helping token (if any): recovery has linearized
  // the crashed write (§5.4). Recovery, too, must survive transient
  // faults — a dropped copy would leave the disks diverged with no token.
  for (uint64_t a = 0; a < d1_.size(); ++a) {
    Result<disk::Block> r = co_await RetryRead(d1_, a);
    if (r.ok()) {
      (void)co_await RetryWrite(d2_, a, std::move(r).value());
      if (std::optional<cap::PendingOp> op = help_.Take(HelpKey(a))) {
        helped(op->op_id);
      }
    }
  }
  // Synthesize fresh leases from the master copies (§5.3 rule 3) and
  // fresh locks for the new generation.
  InitVolatile();
}

uint64_t ReplicatedDisk::PeekLogical(uint64_t a) const {
  const disk::Disk& primary = d1_.failed() ? d2_ : d1_;
  return disk::U64OfBlock(primary.PeekBlock(a));
}

}  // namespace perennial::systems
