// Specification of the replicated disk (paper Figure 3): the two physical
// disks behave as a single logical disk mapping addresses to values, reads
// and writes are atomic, and the crash transition loses nothing.
#ifndef PERENNIAL_SRC_SYSTEMS_REPL_REPL_SPEC_H_
#define PERENNIAL_SRC_SYSTEMS_REPL_REPL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tsys/transition.h"

namespace perennial::systems {

struct ReplSpec {
  struct State {
    std::vector<uint64_t> blocks;
    friend bool operator==(const State&, const State&) = default;
  };
  struct Op {
    bool is_write = false;
    uint64_t a = 0;
    uint64_t v = 0;
  };
  using Ret = uint64_t;  // rd_read: the value; rd_write: 0

  uint64_t num_blocks = 1;

  State Initial() const { return State{std::vector<uint64_t>(num_blocks, 0)}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (op.a >= s.blocks.size()) {
      // Out-of-bounds access is undefined (Figure 3's `undefined` branch).
      return tsys::Outcome<State, Ret>::Undef();
    }
    if (op.is_write) {
      State next = s;
      next.blocks[op.a] = op.v;
      return tsys::Outcome<State, Ret>::One(std::move(next), 0);
    }
    return tsys::Outcome<State, Ret>::One(s, s.blocks[op.a]);
  }

  // crash : ret tt — no data is lost (Figure 3).
  std::vector<State> CrashSteps(const State& s) const { return {s}; }

  static std::string StateKey(const State& s) {
    std::string key;
    for (uint64_t b : s.blocks) {
      key += std::to_string(b) + ",";
    }
    return key;
  }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) {
    if (op.is_write) {
      return "rd_write(" + std::to_string(op.a) + ", " + std::to_string(op.v) + ")";
    }
    return "rd_read(" + std::to_string(op.a) + ")";
  }

  static Op MakeRead(uint64_t a) { return Op{false, a, 0}; }
  static Op MakeWrite(uint64_t a, uint64_t v) { return Op{true, a, v}; }
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_REPL_REPL_SPEC_H_
