// A miniature flash translation layer — the "lower-level storage system"
// the paper names as in-scope for Perennial's reasoning (§1). A distinct
// crash-safety pattern from WAL/shadow/replication: *log-structured
// mapping with recovery by scan*.
//
// Flash model: pages are append-only within an execution (no overwrite of
// a programmed page; erase = whole-device, not modeled). Each programmed
// page holds a record (lba, seq, value). The FTL keeps a volatile mapping
// lba -> physical page, updated on every write; reads go through the
// mapping. A crash destroys the mapping; recovery rebuilds it by scanning
// all pages and keeping, per lba, the record with the highest sequence
// number.
//
// Correctness hinges on two details the checker exercises via mutations:
//  * sequence numbers must increase with the global write order — a
//    constant sequence number makes the recovery scan resurrect stale
//    data for any twice-written lba;
//  * the page program IS the durability point — a write that only updates
//    the volatile mapping loses already-acknowledged data at a crash.
//
// Writes are serialized by one lock (single program queue, like a real
// device); reads take the lock too (mapping access). No helping is needed:
// a crashed write either programmed its page (the scan finds it: committed)
// or not (vanished) — the page program is the linearization point.
#ifndef PERENNIAL_SRC_SYSTEMS_FTL_FTL_H_
#define PERENNIAL_SRC_SYSTEMS_FTL_FTL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/cap/crash_invariant.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

// A flash page record: (lba, seq, value), 24 bytes. seq == 0 marks an
// unprogrammed page.
disk::Block EncodeFtlPage(uint64_t lba, uint64_t seq, uint64_t value);
void DecodeFtlPage(const disk::Block& block, uint64_t* lba, uint64_t* seq, uint64_t* value);

class Ftl {
 public:
  struct Mutations {
    // Every record gets seq = 1 ("forgot to increment"): after a crash the
    // recovery scan cannot order records for a twice-written lba and
    // resurrects the older value.
    bool reuse_sequence_numbers = false;
    // The write updates the in-memory mapping but never programs the page:
    // a *returned* write evaporates at the next crash.
    bool volatile_write = false;
  };

  Ftl(goose::World* world, uint64_t num_lbas, uint64_t num_pages, Mutations mutations);
  Ftl(goose::World* world, uint64_t num_lbas, uint64_t num_pages)
      : Ftl(world, num_lbas, num_pages, Mutations{}) {}

  uint64_t num_lbas() const { return num_lbas_; }

  // Reads the logical block (0 if never written).
  proc::Task<uint64_t> Read(uint64_t lba);

  // Durably writes the logical block (linearizes at the page program).
  proc::Task<void> Write(uint64_t lba, uint64_t value);

  // Rebuilds the mapping by scanning every page.
  proc::Task<void> Recover();

  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  // Harness: the value recovery-by-scan would produce for `lba`.
  uint64_t PeekCommitted(uint64_t lba) const;
  uint64_t PagesUsedForTesting() const { return next_page_; }

 private:
  void InitVolatileEmpty();

  goose::World* world_;
  uint64_t num_lbas_;
  uint64_t num_pages_;
  disk::Disk flash_;
  cap::LeaseRegistry leases_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::unique_ptr<goose::Mutex> mu_;
  // Volatile FTL state, rebuilt by Recover():
  std::vector<std::optional<uint64_t>> mapping_;  // lba -> physical page
  uint64_t next_page_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<cap::Lease> page_leases_;
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_FTL_FTL_H_
