#include "src/systems/ftl/ftl.h"

#include <string>

namespace perennial::systems {

disk::Block EncodeFtlPage(uint64_t lba, uint64_t seq, uint64_t value) {
  disk::Block block(24);
  for (int i = 0; i < 8; ++i) {
    block[static_cast<size_t>(i)] = static_cast<uint8_t>(lba >> (8 * i));
    block[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(seq >> (8 * i));
    block[static_cast<size_t>(16 + i)] = static_cast<uint8_t>(value >> (8 * i));
  }
  return block;
}

void DecodeFtlPage(const disk::Block& block, uint64_t* lba, uint64_t* seq, uint64_t* value) {
  PCC_ENSURE(block.size() >= 24, "DecodeFtlPage: short block");
  *lba = 0;
  *seq = 0;
  *value = 0;
  for (int i = 7; i >= 0; --i) {
    *lba = (*lba << 8) | block[static_cast<size_t>(i)];
    *seq = (*seq << 8) | block[static_cast<size_t>(8 + i)];
    *value = (*value << 8) | block[static_cast<size_t>(16 + i)];
  }
}

namespace {
std::string PageKey(uint64_t p) { return "flash[" + std::to_string(p) + "]"; }
}  // namespace

Ftl::Ftl(goose::World* world, uint64_t num_lbas, uint64_t num_pages, Mutations mutations)
    : world_(world),
      num_lbas_(num_lbas),
      num_pages_(num_pages),
      flash_(world, num_pages, EncodeFtlPage(0, 0, 0)),
      leases_(world),
      mutations_(mutations) {
  InitVolatileEmpty();
  // Programmed pages are well-formed and contiguous from page 0 — the
  // structural facts the recovery scan relies on.
  invariants_.Register("ftl-pages-well-formed-and-contiguous", [this] {
    bool seen_unprogrammed = false;
    for (uint64_t p = 0; p < num_pages_; ++p) {
      uint64_t lba = 0;
      uint64_t seq = 0;
      uint64_t value = 0;
      DecodeFtlPage(flash_.PeekBlock(p), &lba, &seq, &value);
      if (seq == 0) {
        seen_unprogrammed = true;
        continue;
      }
      if (seen_unprogrammed || lba >= num_lbas_) {
        return false;  // gap in the log, or a corrupt record
      }
    }
    return true;
  });
}

void Ftl::InitVolatileEmpty() {
  mu_ = std::make_unique<goose::Mutex>(world_);
  mapping_.assign(num_lbas_, std::nullopt);
  next_page_ = 0;
  next_seq_ = 1;
  page_leases_.clear();
  for (uint64_t p = 0; p < num_pages_; ++p) {
    page_leases_.push_back(leases_.Issue(PageKey(p)));
  }
}

proc::Task<uint64_t> Ftl::Read(uint64_t lba) {
  PCC_ENSURE(lba < num_lbas_, "Ftl::Read: lba out of range");
  co_await mu_->Lock();
  uint64_t result = 0;
  if (mapping_[lba].has_value()) {
    Result<disk::Block> page = co_await flash_.Read(*mapping_[lba]);
    uint64_t record_lba = 0;
    uint64_t seq = 0;
    DecodeFtlPage(page.value(), &record_lba, &seq, &result);
    PCC_ENSURE(record_lba == lba, "Ftl::Read: mapping points at a foreign record");
  }
  co_await mu_->Unlock();
  co_return result;
}

proc::Task<void> Ftl::Write(uint64_t lba, uint64_t value) {
  PCC_ENSURE(lba < num_lbas_, "Ftl::Write: lba out of range");
  co_await mu_->Lock();
  PCC_ENSURE(next_page_ < num_pages_, "Ftl::Write: flash full (size the workload smaller)");
  uint64_t page = next_page_;
  uint64_t seq = mutations_.reuse_sequence_numbers ? 1 : next_seq_;
  leases_.Verify(page_leases_[page], "ftl program");
  if (!mutations_.volatile_write) {
    // The page program: one atomic step, and the write's linearization
    // point — after it, the recovery scan will find this record.
    (void)co_await flash_.Write(page, EncodeFtlPage(lba, seq, value));
  }
  mapping_[lba] = page;
  ++next_page_;
  ++next_seq_;
  co_await mu_->Unlock();
}

proc::Task<void> Ftl::Recover() {
  InitVolatileEmpty();
  std::vector<uint64_t> best_seq(num_lbas_, 0);
  for (uint64_t p = 0; p < num_pages_; ++p) {
    Result<disk::Block> page = co_await flash_.Read(p);
    uint64_t lba = 0;
    uint64_t seq = 0;
    uint64_t value = 0;
    DecodeFtlPage(page.value(), &lba, &seq, &value);
    if (seq == 0) {
      break;  // first unprogrammed page: the log ends here (contiguity)
    }
    PCC_ENSURE(lba < num_lbas_, "Ftl::Recover: corrupt record");
    next_page_ = p + 1;
    if (seq >= next_seq_) {
      next_seq_ = seq + 1;
    }
    // Highest sequence number wins; ties (only possible with the broken
    // constant-seq mutation) keep the FIRST record, resurrecting old data.
    if (seq > best_seq[lba]) {
      best_seq[lba] = seq;
      mapping_[lba] = p;
    }
  }
}

uint64_t Ftl::PeekCommitted(uint64_t lba) const {
  uint64_t best_seq = 0;
  uint64_t best_value = 0;
  for (uint64_t p = 0; p < num_pages_; ++p) {
    uint64_t record_lba = 0;
    uint64_t seq = 0;
    uint64_t value = 0;
    DecodeFtlPage(flash_.PeekBlock(p), &record_lba, &seq, &value);
    if (seq > 0 && record_lba == lba && seq > best_seq) {
      best_seq = seq;
      best_value = value;
    }
  }
  return best_value;
}

}  // namespace perennial::systems
