// Checker harness for the mini-FTL. The specification is the same
// one-logical-disk transition system as the replicated disk (Figure 3):
// addresses map to values, reads/writes are atomic, crashes lose nothing.
#ifndef PERENNIAL_SRC_SYSTEMS_FTL_FTL_HARNESS_H_
#define PERENNIAL_SRC_SYSTEMS_FTL_FTL_HARNESS_H_

#include <memory>
#include <vector>

#include "src/refine/explorer.h"
#include "src/systems/ftl/ftl.h"
#include "src/systems/repl/repl_spec.h"

namespace perennial::systems {

struct FtlHarnessOptions {
  uint64_t num_lbas = 2;
  uint64_t num_pages = 16;
  std::vector<std::vector<ReplSpec::Op>> client_ops;
  Ftl::Mutations mutations;
  bool observe_all = true;
};

inline refine::Instance<ReplSpec> MakeFtlInstance(const FtlHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<Ftl> ftl;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->ftl = std::make_unique<Ftl>(&bundle->world, options.num_lbas, options.num_pages,
                                      options.mutations);
  Ftl* ftl = bundle->ftl.get();

  refine::Instance<ReplSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = &ftl->crash_invariants();
  inst.client_ops = options.client_ops;
  inst.run_op = [ftl](int, uint64_t, ReplSpec::Op op) -> proc::Task<uint64_t> {
    if (op.is_write) {
      co_await ftl->Write(op.a, op.v);
      co_return 0;
    }
    co_return co_await ftl->Read(op.a);
  };
  inst.recover = [ftl](refine::History<ReplSpec>*) -> proc::Task<void> {
    co_await ftl->Recover();
  };
  if (options.observe_all) {
    for (uint64_t a = 0; a < options.num_lbas; ++a) {
      inst.observer_ops.push_back(ReplSpec::MakeRead(a));
    }
  }
  return inst;
}

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_FTL_FTL_HARNESS_H_
