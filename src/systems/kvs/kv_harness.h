// Checker harness for DurableKv.
#ifndef PERENNIAL_SRC_SYSTEMS_KVS_KV_HARNESS_H_
#define PERENNIAL_SRC_SYSTEMS_KVS_KV_HARNESS_H_

#include <memory>
#include <vector>

#include "src/refine/explorer.h"
#include "src/systems/kvs/kv_spec.h"
#include "src/systems/kvs/kv_store.h"

namespace perennial::systems {

struct KvHarnessOptions {
  uint64_t num_keys = 2;
  std::vector<std::vector<KvSpec::Op>> client_ops;
  DurableKv::Mutations mutations;
  bool observe_all = true;
};

inline refine::Instance<KvSpec> MakeKvInstance(const KvHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<DurableKv> kv;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->kv = std::make_unique<DurableKv>(&bundle->world, options.num_keys, options.mutations);
  DurableKv* kv = bundle->kv.get();

  refine::Instance<KvSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = &kv->crash_invariants();
  inst.client_ops = options.client_ops;
  inst.run_op = [kv](int, uint64_t op_id, KvSpec::Op op) -> proc::Task<uint64_t> {
    switch (op.kind) {
      case KvSpec::Kind::kGet:
        co_return co_await kv->Get(op.k1);
      case KvSpec::Kind::kPut:
        co_await kv->Put(op.k1, op.v1, op_id);
        co_return 0;
      case KvSpec::Kind::kPutPair:
        co_await kv->PutPair(op.k1, op.v1, op.k2, op.v2, op_id);
        co_return 0;
    }
    co_return 0;
  };
  inst.recover = [kv](refine::History<KvSpec>* history) -> proc::Task<void> {
    co_await kv->Recover([history](uint64_t op_id) { history->Helped(op_id); });
  };
  if (options.observe_all) {
    for (uint64_t k = 0; k < options.num_keys; ++k) {
      inst.observer_ops.push_back(KvSpec::MakeGet(k));
    }
  }
  return inst;
}

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_KVS_KV_HARNESS_H_
