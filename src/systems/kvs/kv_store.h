// DurableKv: a concurrent, crash-safe key-value store with multi-key
// transactions — the kind of system a downstream user would build on this
// framework (and an instance of the paper's future-work direction of
// stacking systems on the verified substrate).
//
// Design: per-key reader-writer locks (Gets share; Puts exclude), plus a
// single-slot write-ahead log for atomicity:
//   Put(k, v)            — lock k; log (k,v); commit; apply; clear.
//   PutPair(k1,v1,k2,v2) — lock both keys in ascending order (deadlock
//                          avoidance the checker can falsify!), log both
//                          entries, one commit write covers the pair.
//   Get(k)               — lock k; read the data block.
// The commit write deposits a helping token; recovery replays a committed
// transaction and consumes the token (§5.4). Every block is covered by a
// recovery lease (§5.3); "count ∈ {0,1,2} and count>0 ⟺ token present" is
// the crash invariant (§5.1).
//
// Disk layout: block 0 = committed-entry count (the commit point);
// blocks 1,2 = log entries (key, value); blocks 3..3+N = data.
#ifndef PERENNIAL_SRC_SYSTEMS_KVS_KV_STORE_H_
#define PERENNIAL_SRC_SYSTEMS_KVS_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cap/crash_invariant.h"
#include "src/cap/helping.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/goose/mutex.h"
#include "src/goose/sync_extra.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

// (key, value) encoded into one 16-byte disk block.
disk::Block EncodeKvEntry(uint64_t key, uint64_t value);
void DecodeKvEntry(const disk::Block& block, uint64_t* key, uint64_t* value);

class DurableKv {
 public:
  struct Mutations {
    bool unordered_locks = false;      // PutPair takes locks in caller order: deadlock
    bool apply_before_commit = false;  // data first, commit second: torn transactions
    bool skip_recovery = false;        // committed-but-unapplied txns never replayed
  };

  DurableKv(goose::World* world, uint64_t num_keys, Mutations mutations);
  DurableKv(goose::World* world, uint64_t num_keys) : DurableKv(world, num_keys, Mutations{}) {}

  uint64_t num_keys() const { return num_keys_; }

  proc::Task<uint64_t> Get(uint64_t key);
  proc::Task<void> Put(uint64_t key, uint64_t value, uint64_t op_id);
  // Atomically sets two distinct keys (k1 != k2; equal keys are the
  // caller's bug and undefined).
  proc::Task<void> PutPair(uint64_t k1, uint64_t v1, uint64_t k2, uint64_t v2, uint64_t op_id);

  // Replays any committed transaction, rebuilds volatile state.
  proc::Task<void> Recover(std::function<void(uint64_t)> helped);

  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  // Harness: durable value of `key`.
  uint64_t PeekValue(uint64_t key) const;

 private:
  static constexpr uint64_t kCountBlock = 0;
  static constexpr uint64_t kLogBase = 1;
  static constexpr uint64_t kDataBase = 3;
  static constexpr const char* kTxnKey = "kv:txn";

  void InitVolatile();
  // The shared commit path: callers hold the key locks involved.
  proc::Task<void> CommitAndApply(const std::vector<std::pair<uint64_t, uint64_t>>& writes,
                                  uint64_t op_id);

  goose::World* world_;
  uint64_t num_keys_;
  disk::Disk disk_;
  cap::LeaseRegistry leases_;
  cap::HelpRegistry help_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::vector<std::unique_ptr<goose::RWMutex>> key_locks_;
  std::unique_ptr<goose::Mutex> log_lock_;
  std::vector<cap::Lease> data_leases_;
  cap::Lease log_leases_[3];  // count + two entry slots
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_KVS_KV_STORE_H_
