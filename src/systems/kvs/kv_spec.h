// Specification of DurableKv: a map from a fixed keyspace to values where
// Put and PutPair are atomic and nothing is lost at a crash.
#ifndef PERENNIAL_SRC_SYSTEMS_KVS_KV_SPEC_H_
#define PERENNIAL_SRC_SYSTEMS_KVS_KV_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tsys/transition.h"

namespace perennial::systems {

struct KvSpec {
  struct State {
    std::vector<uint64_t> values;
    friend bool operator==(const State&, const State&) = default;
  };
  enum class Kind { kGet, kPut, kPutPair };
  struct Op {
    Kind kind = Kind::kGet;
    uint64_t k1 = 0;
    uint64_t v1 = 0;
    uint64_t k2 = 0;
    uint64_t v2 = 0;
  };
  using Ret = uint64_t;  // gets: the value; puts: 0

  uint64_t num_keys = 1;

  State Initial() const { return State{std::vector<uint64_t>(num_keys, 0)}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    switch (op.kind) {
      case Kind::kGet: {
        if (op.k1 >= num_keys) {
          return tsys::Outcome<State, Ret>::Undef();
        }
        return tsys::Outcome<State, Ret>::One(s, s.values[op.k1]);
      }
      case Kind::kPut: {
        if (op.k1 >= num_keys) {
          return tsys::Outcome<State, Ret>::Undef();
        }
        State next = s;
        next.values[op.k1] = op.v1;
        return tsys::Outcome<State, Ret>::One(std::move(next), 0);
      }
      case Kind::kPutPair: {
        if (op.k1 >= num_keys || op.k2 >= num_keys || op.k1 == op.k2) {
          return tsys::Outcome<State, Ret>::Undef();
        }
        State next = s;
        next.values[op.k1] = op.v1;
        next.values[op.k2] = op.v2;
        return tsys::Outcome<State, Ret>::One(std::move(next), 0);
      }
    }
    return tsys::Outcome<State, Ret>::None();
  }

  std::vector<State> CrashSteps(const State& s) const { return {s}; }

  static std::string StateKey(const State& s) {
    std::string key;
    for (uint64_t v : s.values) {
      key += std::to_string(v) + ",";
    }
    return key;
  }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) {
    switch (op.kind) {
      case Kind::kGet:
        return "Get(" + std::to_string(op.k1) + ")";
      case Kind::kPut:
        return "Put(" + std::to_string(op.k1) + ", " + std::to_string(op.v1) + ")";
      case Kind::kPutPair:
        return "PutPair(" + std::to_string(op.k1) + "=" + std::to_string(op.v1) + ", " +
               std::to_string(op.k2) + "=" + std::to_string(op.v2) + ")";
    }
    return "?";
  }

  static Op MakeGet(uint64_t k) { return Op{Kind::kGet, k, 0, 0, 0}; }
  static Op MakePut(uint64_t k, uint64_t v) { return Op{Kind::kPut, k, v, 0, 0}; }
  static Op MakePutPair(uint64_t k1, uint64_t v1, uint64_t k2, uint64_t v2) {
    return Op{Kind::kPutPair, k1, v1, k2, v2};
  }
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_KVS_KV_SPEC_H_
