#include "src/systems/kvs/kv_store.h"

#include <algorithm>
#include <string>

namespace perennial::systems {

disk::Block EncodeKvEntry(uint64_t key, uint64_t value) {
  disk::Block block(16);
  for (int i = 0; i < 8; ++i) {
    block[static_cast<size_t>(i)] = static_cast<uint8_t>(key >> (8 * i));
    block[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(value >> (8 * i));
  }
  return block;
}

void DecodeKvEntry(const disk::Block& block, uint64_t* key, uint64_t* value) {
  PCC_ENSURE(block.size() >= 16, "DecodeKvEntry: short block");
  *key = 0;
  *value = 0;
  for (int i = 7; i >= 0; --i) {
    *key = (*key << 8) | block[static_cast<size_t>(i)];
    *value = (*value << 8) | block[static_cast<size_t>(8 + i)];
  }
}

namespace {
std::string BlockKey(uint64_t b) { return "kv[" + std::to_string(b) + "]"; }
}  // namespace

DurableKv::DurableKv(goose::World* world, uint64_t num_keys, Mutations mutations)
    : world_(world),
      num_keys_(num_keys),
      disk_(world, kDataBase + num_keys, disk::BlockOfU64(0)),
      leases_(world),
      mutations_(mutations) {
  InitVolatile();
  invariants_.Register("kv-count-matches-helping-token", [this] {
    uint64_t count = disk::U64OfBlock(disk_.PeekBlock(kCountBlock));
    if (count > 2) {
      return false;
    }
    return (count > 0) == help_.Has(kTxnKey);
  });
}

void DurableKv::InitVolatile() {
  key_locks_.clear();
  data_leases_.clear();
  for (uint64_t k = 0; k < num_keys_; ++k) {
    key_locks_.push_back(std::make_unique<goose::RWMutex>(world_));
    data_leases_.push_back(leases_.Issue(BlockKey(kDataBase + k)));
  }
  log_lock_ = std::make_unique<goose::Mutex>(world_);
  for (uint64_t b = 0; b < 3; ++b) {
    log_leases_[b] = leases_.Issue(BlockKey(b));
  }
}

proc::Task<uint64_t> DurableKv::Get(uint64_t key) {
  PCC_ENSURE(key < num_keys_, "Get: key out of range");
  co_await key_locks_[key]->RLock();  // readers share
  Result<disk::Block> block = co_await disk_.Read(kDataBase + key);
  uint64_t value = disk::U64OfBlock(block.value());
  co_await key_locks_[key]->RUnlock();
  co_return value;
}

proc::Task<void> DurableKv::CommitAndApply(
    const std::vector<std::pair<uint64_t, uint64_t>>& writes, uint64_t op_id) {
  co_await log_lock_->Lock();
  for (uint64_t b = 0; b < 3; ++b) {
    leases_.Verify(log_leases_[b], "kv commit");
  }
  if (mutations_.apply_before_commit) {
    // Bug: data changes before the commit record exists.
    for (const auto& [key, value] : writes) {
      leases_.Verify(data_leases_[key], "kv apply");
      (void)co_await disk_.Write(kDataBase + key, disk::BlockOfU64(value));
    }
    co_await log_lock_->Unlock();
    co_return;
  }
  // 1. Log every entry of the transaction.
  for (size_t i = 0; i < writes.size(); ++i) {
    (void)co_await disk_.Write(kLogBase + i, EncodeKvEntry(writes[i].first, writes[i].second));
  }
  // 2. Commit point: one count write covers the whole batch; the helping
  //    token rides in the same atomic step.
  (void)co_await disk_.Write(kCountBlock, disk::BlockOfU64(writes.size()));
  help_.Deposit(kTxnKey, cap::PendingOp{-1, op_id});
  // 3. Apply.
  for (const auto& [key, value] : writes) {
    leases_.Verify(data_leases_[key], "kv apply");
    (void)co_await disk_.Write(kDataBase + key, disk::BlockOfU64(value));
  }
  // 4. Clear the commit record; the transaction is no longer pending.
  (void)co_await disk_.Write(kCountBlock, disk::BlockOfU64(0));
  help_.Withdraw(kTxnKey);
  co_await log_lock_->Unlock();
}

proc::Task<void> DurableKv::Put(uint64_t key, uint64_t value, uint64_t op_id) {
  PCC_ENSURE(key < num_keys_, "Put: key out of range");
  co_await key_locks_[key]->Lock();
  std::vector<std::pair<uint64_t, uint64_t>> writes{{key, value}};
  co_await CommitAndApply(writes, op_id);
  co_await key_locks_[key]->Unlock();
}

proc::Task<void> DurableKv::PutPair(uint64_t k1, uint64_t v1, uint64_t k2, uint64_t v2,
                                    uint64_t op_id) {
  PCC_ENSURE(k1 < num_keys_ && k2 < num_keys_ && k1 != k2, "PutPair: bad keys");
  uint64_t first = k1;
  uint64_t second = k2;
  if (!mutations_.unordered_locks && first > second) {
    // Deadlock avoidance: always lock the smaller key first. The mutation
    // skips this, and the checker finds the two-transaction deadlock.
    std::swap(first, second);
  }
  co_await key_locks_[first]->Lock();
  co_await key_locks_[second]->Lock();
  std::vector<std::pair<uint64_t, uint64_t>> writes{{k1, v1}, {k2, v2}};
  co_await CommitAndApply(writes, op_id);
  co_await key_locks_[second]->Unlock();
  co_await key_locks_[first]->Unlock();
}

proc::Task<void> DurableKv::Recover(std::function<void(uint64_t)> helped) {
  if (mutations_.skip_recovery) {
    InitVolatile();
    co_return;
  }
  Result<disk::Block> count_block = co_await disk_.Read(kCountBlock);
  uint64_t count = disk::U64OfBlock(count_block.value());
  if (count > 0) {
    PCC_ENSURE(count <= 2, "Recover: corrupt commit record");
    for (uint64_t i = 0; i < count; ++i) {
      Result<disk::Block> entry = co_await disk_.Read(kLogBase + i);
      uint64_t key = 0;
      uint64_t value = 0;
      DecodeKvEntry(entry.value(), &key, &value);
      PCC_ENSURE(key < num_keys_, "Recover: corrupt log entry");
      (void)co_await disk_.Write(kDataBase + key, disk::BlockOfU64(value));
    }
    (void)co_await disk_.Write(kCountBlock, disk::BlockOfU64(0));
    if (std::optional<cap::PendingOp> op = help_.Take(kTxnKey)) {
      helped(op->op_id);
    }
  }
  InitVolatile();
}

uint64_t DurableKv::PeekValue(uint64_t key) const {
  PCC_ENSURE(key < num_keys_, "PeekValue: key out of range");
  return disk::U64OfBlock(disk_.PeekBlock(kDataBase + key));
}

}  // namespace perennial::systems
