// Checker harness for TxnLog.
#ifndef PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_HARNESS_H_
#define PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_HARNESS_H_

#include <memory>
#include <vector>

#include "src/fault/fault.h"
#include "src/fault/fault_events.h"
#include "src/refine/explorer.h"
#include "src/systems/txnlog/txn_log.h"
#include "src/systems/txnlog/txn_spec.h"

namespace perennial::systems {

struct TxnHarnessOptions {
  uint64_t num_addrs = 2;
  uint64_t log_capacity = 4;
  std::vector<std::vector<TxnSpec::Op>> client_ops;
  TxnLog::Mutations mutations;
  // Environment faults for the log device. The harness pins
  // torn_min_block to at least 1: block 0 is the header, modeled as a
  // single atomic sector (see txn_log.h); record/data blocks may tear.
  fault::FaultPlan fault_plan;
  bool observe_all = true;
};

inline refine::Instance<TxnSpec> MakeTxnInstance(const TxnHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<fault::FaultSchedule> faults;
    std::unique_ptr<TxnLog> log;
  };
  auto bundle = std::make_shared<Bundle>();
  fault::FaultPlan plan = options.fault_plan;
  if (plan.torn_min_block < 1) {
    plan.torn_min_block = 1;  // the header sector writes atomically
  }
  if (plan.AnyBudget()) {
    bundle->faults = std::make_unique<fault::FaultSchedule>(plan);
  }
  bundle->log = std::make_unique<TxnLog>(&bundle->world, options.num_addrs,
                                         options.log_capacity, options.mutations,
                                         bundle->faults.get());
  TxnLog* log = bundle->log.get();

  refine::Instance<TxnSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = &log->crash_invariants();
  inst.client_ops = options.client_ops;
  inst.run_op = [log](int, uint64_t op_id, TxnSpec::Op op) -> proc::Task<uint64_t> {
    switch (op.kind) {
      case TxnSpec::Kind::kRead:
        co_return co_await log->Read(op.addr);
      case TxnSpec::Kind::kWriteBatch:
        co_await log->CommitBatch(op.records, op_id);
        co_return 0;
      case TxnSpec::Kind::kCheckpoint:
        co_await log->Checkpoint();
        co_return 0;
    }
    co_return 0;
  };
  inst.recover = [log](refine::History<TxnSpec>* history) -> proc::Task<void> {
    co_await log->Recover([history](uint64_t op_id) { history->Helped(op_id); });
  };
  if (options.observe_all) {
    for (uint64_t a = 0; a < options.num_addrs; ++a) {
      inst.observer_ops.push_back(TxnSpec::MakeRead(a));
    }
  }
  if (bundle->faults != nullptr) {
    fault::AddFaultEvents(plan, bundle->faults.get(), &inst);
  }
  return inst;
}

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_HARNESS_H_
