// TxnLog: a general write-ahead log engine — the production-shaped
// generalization of the fixed-size wal_pair example.
//
// One disk holds three regions:
//   block 0                      — header: (committed, applied) record
//                                  counts, updated with ONE atomic write
//   blocks 1..capacity           — the record log: (addr, value) entries
//   blocks 1+capacity..          — the data region (one block per address)
//
// Operations:
//   CommitBatch(records) — append the records and advance `committed` with
//     a single header write: the batch's linearization point. The batch is
//     durable from that instant even though the data region is stale.
//   Read(addr) — log-structured read: the newest committed record for
//     `addr`, falling back to the data region.
//   Checkpoint() — apply committed records to the data region, then
//     truncate the log with one header write (committed = applied = 0).
//   Recover() — reconcile after a crash: replay committed-but-unapplied
//     records into the data region (consuming the helping token the commit
//     deposited), truncate, rebuild volatile state.
//
// Capability discipline: leases on the header and every block; a crash
// invariant ties the header to the helping token:
//   applied <= committed <= capacity, and committed > applied ⟺ a pending
//   batch token is present.
//
// Environment-fault discipline (src/fault): the header occupies a single
// atomic sector (FaultPlan::torn_min_block = 1 in the harness), but record
// and data blocks are multi-sector and can be torn. The engine therefore
// issues a write Barrier() between payload writes and the single header
// write that publishes them — commit: records, barrier, header; checkpoint:
// data, barrier, truncate. Transient read/write errors are retried with
// bounded backoff. The `no_write_barrier` mutation re-creates the
// missing-flush bug.
#ifndef PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_LOG_H_
#define PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/cap/crash_invariant.h"
#include "src/cap/helping.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/fault/fault.h"
#include "src/fault/faulty_disk.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

class TxnLog {
 public:
  struct Mutations {
    bool header_before_records = false;  // commit header precedes record writes
    bool truncate_before_apply = false;  // checkpoint truncates first, applies after
    // Skip the write barrier between payload writes and the header write
    // that publishes them. Harmless on an atomic disk; under torn-write
    // faults a crash can then commit a half-persisted record (or truncate
    // the log while the data region is half-applied) — the classic
    // missing-flush bug the checker must catch.
    bool no_write_barrier = false;
  };

  // `num_addrs` data addresses; at most `log_capacity` records may be
  // committed-but-uncheckpointed at once. `faults`, when set, subjects the
  // log device to the schedule's transient/torn/fail-slow faults.
  TxnLog(goose::World* world, uint64_t num_addrs, uint64_t log_capacity, Mutations mutations,
         fault::FaultSchedule* faults = nullptr);
  TxnLog(goose::World* world, uint64_t num_addrs, uint64_t log_capacity)
      : TxnLog(world, num_addrs, log_capacity, Mutations{}) {}

  // External-device constructor: run the engine over any BlockDev — in
  // particular disk::PosixDisk, real storage under the cross-process crash
  // harness (src/crashreal). The device must already be formatted (block 0
  // a valid header); unlike the modeled constructor this never writes, so
  // it is safe to construct over a device holding recovered on-disk state.
  // The caller keeps ownership of `dev`, which must outlive the log.
  TxnLog(goose::World* world, disk::BlockDev* dev, uint64_t num_addrs, uint64_t log_capacity,
         Mutations mutations);

  uint64_t num_addrs() const { return num_addrs_; }

  // Atomically and durably applies all `records` (addr, value). Returns
  // only after the commit point. Fails the process if the log is full and
  // checkpointing cannot free enough space.
  proc::Task<void> CommitBatch(std::vector<std::pair<uint64_t, uint64_t>> records,
                               uint64_t op_id);

  // The current committed value of `addr`.
  proc::Task<uint64_t> Read(uint64_t addr);

  // Applies the log to the data region and truncates it.
  proc::Task<void> Checkpoint();

  proc::Task<void> Recover(std::function<void(uint64_t)> helped);

  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  // Harness: committed value as recoverable from disk (log + data region).
  uint64_t PeekCommitted(uint64_t addr) const;
  std::pair<uint64_t, uint64_t> PeekHeaderForTesting() const;

 private:
  static constexpr uint64_t kHeaderBlock = 0;
  static constexpr uint64_t kLogBase = 1;
  static constexpr const char* kBatchKey = "txnlog:batch";

  uint64_t DataBlock(uint64_t addr) const { return kLogBase + log_capacity_ + addr; }
  void InitVolatile();
  void RegisterInvariants();
  // Applies records [applied, committed) to the data region and truncates.
  // Caller holds the lock.
  proc::Task<void> ApplyAndTruncate();
  // Disk I/O with the library's retry policy: transient kUnavailable errors
  // are retried with bounded backoff (fault/retry.h); anything else is a
  // bug in this engine's workloads and panics at the existing call sites.
  proc::Task<disk::Block> ReadRetry(uint64_t a);
  proc::Task<void> WriteRetry(uint64_t a, disk::Block value);

  goose::World* world_;
  uint64_t num_addrs_;
  uint64_t log_capacity_;
  // The modeled configuration owns a FaultyDisk; the external-device
  // configuration borrows the caller's BlockDev. All engine I/O goes
  // through dev_, which aliases owned_disk_ when the latter is set.
  std::unique_ptr<fault::FaultyDisk> owned_disk_;
  disk::BlockDev* dev_;
  cap::LeaseRegistry leases_;
  cap::HelpRegistry help_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::unique_ptr<goose::Mutex> mu_;
  std::vector<cap::Lease> block_leases_;
};

// Header codec: (committed, applied) in one 16-byte block.
disk::Block EncodeTxnHeader(uint64_t committed, uint64_t applied);
void DecodeTxnHeader(const disk::Block& block, uint64_t* committed, uint64_t* applied);

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_LOG_H_
