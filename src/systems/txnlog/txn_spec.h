// Specification of TxnLog: an array of values where a committed batch
// applies atomically, reads are always current, checkpointing is
// observably a no-op, and crashes lose nothing committed.
#ifndef PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_SPEC_H_
#define PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/tsys/transition.h"

namespace perennial::systems {

struct TxnSpec {
  struct State {
    std::vector<uint64_t> values;
    friend bool operator==(const State&, const State&) = default;
  };
  enum class Kind { kRead, kWriteBatch, kCheckpoint };
  struct Op {
    Kind kind = Kind::kRead;
    uint64_t addr = 0;                                     // kRead
    std::vector<std::pair<uint64_t, uint64_t>> records;    // kWriteBatch
  };
  using Ret = uint64_t;

  uint64_t num_addrs = 1;

  State Initial() const { return State{std::vector<uint64_t>(num_addrs, 0)}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    switch (op.kind) {
      case Kind::kRead: {
        if (op.addr >= num_addrs) {
          return tsys::Outcome<State, Ret>::Undef();
        }
        return tsys::Outcome<State, Ret>::One(s, s.values[op.addr]);
      }
      case Kind::kWriteBatch: {
        State next = s;
        for (const auto& [addr, value] : op.records) {
          if (addr >= num_addrs) {
            return tsys::Outcome<State, Ret>::Undef();
          }
          next.values[addr] = value;
        }
        return tsys::Outcome<State, Ret>::One(std::move(next), 0);
      }
      case Kind::kCheckpoint: {
        return tsys::Outcome<State, Ret>::One(s, 0);
      }
    }
    return tsys::Outcome<State, Ret>::None();
  }

  std::vector<State> CrashSteps(const State& s) const { return {s}; }

  static std::string StateKey(const State& s) {
    std::string key;
    for (uint64_t v : s.values) {
      key += std::to_string(v) + ",";
    }
    return key;
  }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) {
    switch (op.kind) {
      case Kind::kRead:
        return "Read(" + std::to_string(op.addr) + ")";
      case Kind::kWriteBatch: {
        std::string out = "WriteBatch{";
        for (const auto& [addr, value] : op.records) {
          out += std::to_string(addr) + "=" + std::to_string(value) + ";";
        }
        return out + "}";
      }
      case Kind::kCheckpoint:
        return "Checkpoint()";
    }
    return "?";
  }

  static Op MakeRead(uint64_t addr) { return Op{Kind::kRead, addr, {}}; }
  static Op MakeWrite(uint64_t addr, uint64_t value) {
    return Op{Kind::kWriteBatch, 0, {{addr, value}}};
  }
  static Op MakeBatch(std::vector<std::pair<uint64_t, uint64_t>> records) {
    return Op{Kind::kWriteBatch, 0, std::move(records)};
  }
  static Op MakeCheckpoint() { return Op{Kind::kCheckpoint, 0, {}}; }
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_TXNLOG_TXN_SPEC_H_
