#include "src/systems/txnlog/txn_log.h"

#include <string>
#include <utility>

#include "src/fault/retry.h"

namespace perennial::systems {

disk::Block EncodeTxnHeader(uint64_t committed, uint64_t applied) {
  disk::Block block(16);
  for (int i = 0; i < 8; ++i) {
    block[static_cast<size_t>(i)] = static_cast<uint8_t>(committed >> (8 * i));
    block[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(applied >> (8 * i));
  }
  return block;
}

void DecodeTxnHeader(const disk::Block& block, uint64_t* committed, uint64_t* applied) {
  PCC_ENSURE(block.size() >= 16, "DecodeTxnHeader: short block");
  *committed = 0;
  *applied = 0;
  for (int i = 7; i >= 0; --i) {
    *committed = (*committed << 8) | block[static_cast<size_t>(i)];
    *applied = (*applied << 8) | block[static_cast<size_t>(8 + i)];
  }
}

namespace {
std::string BlockKey(uint64_t b) { return "txnlog[" + std::to_string(b) + "]"; }
}  // namespace

TxnLog::TxnLog(goose::World* world, uint64_t num_addrs, uint64_t log_capacity,
               Mutations mutations, fault::FaultSchedule* faults)
    : world_(world),
      num_addrs_(num_addrs),
      log_capacity_(log_capacity),
      owned_disk_(std::make_unique<fault::FaultyDisk>(world, 1 + log_capacity + num_addrs,
                                                      EncodeTxnHeader(0, 0), faults)),
      dev_(owned_disk_.get()),
      leases_(world),
      mutations_(mutations) {
  // Block 0 must start as a valid empty header; other blocks start zeroed
  // (their initial contents are never read before being written).
  dev_->PokeBlock(kHeaderBlock, EncodeTxnHeader(0, 0));
  InitVolatile();
  RegisterInvariants();
}

TxnLog::TxnLog(goose::World* world, disk::BlockDev* dev, uint64_t num_addrs,
               uint64_t log_capacity, Mutations mutations)
    : world_(world),
      num_addrs_(num_addrs),
      log_capacity_(log_capacity),
      dev_(dev),
      leases_(world),
      mutations_(mutations) {
  PCC_ENSURE(dev_ != nullptr, "txnlog: null device");
  PCC_ENSURE(dev_->size() >= 1 + log_capacity_ + num_addrs_,
             "txnlog: device smaller than header + log + data regions");
  // No header poke here: the device carries real (possibly recovered)
  // state, and formatting is the caller's responsibility.
  InitVolatile();
  RegisterInvariants();
}

void TxnLog::RegisterInvariants() {
  // Note: unlike wal_pair, this design needs NO helping token — reads are
  // log-structured (they consult committed records directly), so recovery's
  // replay is observably a no-op and never completes a pending operation.
  // The crash invariant is purely structural.
  invariants_.Register("txnlog-header-well-formed", [this] {
    uint64_t committed = 0;
    uint64_t applied = 0;
    DecodeTxnHeader(dev_->PeekBlock(kHeaderBlock), &committed, &applied);
    return applied <= committed && committed <= log_capacity_;
  });
}

void TxnLog::InitVolatile() {
  mu_ = std::make_unique<goose::Mutex>(world_);
  block_leases_.clear();
  for (uint64_t b = 0; b < 1 + log_capacity_ + num_addrs_; ++b) {
    block_leases_.push_back(leases_.Issue(BlockKey(b)));
  }
}

proc::Task<disk::Block> TxnLog::ReadRetry(uint64_t a) {
  Result<disk::Block> r = co_await fault::RetryWithBackoff(
      fault::RetryPolicy{}, [this, a] { return dev_->Read(a); });
  co_return std::move(r).value();
}

proc::Task<void> TxnLog::WriteRetry(uint64_t a, disk::Block value) {
  Status s = co_await fault::RetryWithBackoff(
      fault::RetryPolicy{}, [this, a, &value] { return dev_->Write(a, value); });
  PCC_ENSURE(s.ok(), "txnlog: disk write failed: " + s.ToString());
}

proc::Task<void> TxnLog::ApplyAndTruncate() {
  disk::Block header = co_await ReadRetry(kHeaderBlock);
  uint64_t committed = 0;
  uint64_t applied = 0;
  DecodeTxnHeader(header, &committed, &applied);
  if (mutations_.truncate_before_apply) {
    // Bug: the log is gone before the data region has the records.
    co_await WriteRetry(kHeaderBlock, EncodeTxnHeader(0, 0));
  }
  for (uint64_t i = applied; i < committed; ++i) {
    disk::Block record = co_await ReadRetry(kLogBase + i);
    uint64_t addr = 0;
    uint64_t value = 0;
    DecodeTxnHeader(record, &addr, &value);
    PCC_ENSURE(addr < num_addrs_, "txnlog: corrupt record");
    leases_.Verify(block_leases_[DataBlock(addr)], "txnlog apply");
    co_await WriteRetry(DataBlock(addr), disk::BlockOfU64(value));
  }
  if (!mutations_.truncate_before_apply) {
    // Barrier: the data-region writes must be fully durable before the
    // truncation publishes "the log is no longer needed" — a torn data
    // write surviving past the truncate would lose the record for good.
    if (!mutations_.no_write_barrier) {
      Status bs = co_await dev_->Barrier();
      PCC_ENSURE(bs.ok(), "txnlog: write barrier failed: " + bs.ToString());
    }
    // Truncation: one atomic header write; the data region now carries
    // everything the log did.
    co_await WriteRetry(kHeaderBlock, EncodeTxnHeader(0, 0));
    // Barrier: the truncation must be durable before any log slot is
    // reused. On a device with a volatile write cache the truncation
    // header and a successor's record writes otherwise flush in arbitrary
    // order, and a crash between them leaves the OLD header (still
    // claiming k committed records) next to a reused slot holding an
    // uncommitted record — recovery then replays that record as if it
    // were committed. Found by the crashreal power-fail soak; the modeled
    // FaultyDisk's prefix-loss faults cannot express this reordering, so
    // only the real-storage harness sees it.
    if (!mutations_.no_write_barrier) {
      Status bs = co_await dev_->Barrier();
      PCC_ENSURE(bs.ok(), "txnlog: truncate flush failed: " + bs.ToString());
    }
  }
}

proc::Task<void> TxnLog::CommitBatch(std::vector<std::pair<uint64_t, uint64_t>> records,
                                     uint64_t op_id) {
  (void)op_id;  // linearization is the commit write itself; no helping needed
  PCC_ENSURE(records.size() <= log_capacity_, "txnlog: batch exceeds log capacity");
  co_await mu_->Lock();
  leases_.Verify(block_leases_[kHeaderBlock], "txnlog commit");
  disk::Block header = co_await ReadRetry(kHeaderBlock);
  uint64_t committed = 0;
  uint64_t applied = 0;
  DecodeTxnHeader(header, &committed, &applied);
  if (committed + records.size() > log_capacity_) {
    co_await ApplyAndTruncate();
    committed = 0;
    applied = 0;
  }
  if (mutations_.header_before_records) {
    // Bug: the commit point precedes the records; a crash in between makes
    // garbage records "committed".
    co_await WriteRetry(kHeaderBlock, EncodeTxnHeader(committed + records.size(), applied));
    for (size_t i = 0; i < records.size(); ++i) {
      co_await WriteRetry(kLogBase + committed + i,
                          EncodeTxnHeader(records[i].first, records[i].second));
    }
    co_await mu_->Unlock();
    co_return;
  }
  for (size_t i = 0; i < records.size(); ++i) {
    PCC_ENSURE(records[i].first < num_addrs_, "txnlog: address out of range");
    co_await WriteRetry(kLogBase + committed + i,
                        EncodeTxnHeader(records[i].first, records[i].second));
  }
  // Barrier: record blocks are multi-sector and may be torn by a crash; the
  // commit header must not claim them until they are fully durable.
  if (!mutations_.no_write_barrier) {
    Status bs = co_await dev_->Barrier();
    PCC_ENSURE(bs.ok(), "txnlog: write barrier failed: " + bs.ToString());
  }
  // Commit point: one header write makes the whole batch durable.
  co_await WriteRetry(kHeaderBlock, EncodeTxnHeader(committed + records.size(), applied));
  // Flush the commit record itself: CommitBatch promises durability on
  // return, and on a device with a volatile write cache the header write
  // is not durable until a barrier lands it (the crashreal power-fail
  // regime exercises exactly this window; the modeled FaultyDisk makes
  // un-torn writes instantly durable, so this barrier is a pure step
  // there).
  if (!mutations_.no_write_barrier) {
    Status bs = co_await dev_->Barrier();
    PCC_ENSURE(bs.ok(), "txnlog: commit flush failed: " + bs.ToString());
  }
  co_await mu_->Unlock();
}

proc::Task<uint64_t> TxnLog::Read(uint64_t addr) {
  PCC_ENSURE(addr < num_addrs_, "txnlog: address out of range");
  co_await mu_->Lock();
  disk::Block header = co_await ReadRetry(kHeaderBlock);
  uint64_t committed = 0;
  uint64_t applied = 0;
  DecodeTxnHeader(header, &committed, &applied);
  // Log-structured read: the newest committed record for `addr` wins.
  std::optional<uint64_t> from_log;
  for (uint64_t i = committed; i > 0; --i) {
    disk::Block record = co_await ReadRetry(kLogBase + i - 1);
    uint64_t record_addr = 0;
    uint64_t value = 0;
    DecodeTxnHeader(record, &record_addr, &value);
    if (record_addr == addr) {
      from_log = value;
      break;
    }
  }
  uint64_t result = 0;
  if (from_log.has_value()) {
    result = *from_log;
  } else {
    disk::Block data = co_await ReadRetry(DataBlock(addr));
    result = disk::U64OfBlock(data);
  }
  co_await mu_->Unlock();
  co_return result;
}

proc::Task<void> TxnLog::Checkpoint() {
  co_await mu_->Lock();
  co_await ApplyAndTruncate();
  co_await mu_->Unlock();
}

proc::Task<void> TxnLog::Recover(std::function<void(uint64_t)> helped) {
  (void)helped;  // see header: recovery never completes an operation here
  InitVolatile();
  co_await ApplyAndTruncate();
}

uint64_t TxnLog::PeekCommitted(uint64_t addr) const {
  uint64_t committed = 0;
  uint64_t applied = 0;
  DecodeTxnHeader(dev_->PeekBlock(kHeaderBlock), &committed, &applied);
  for (uint64_t i = committed; i > 0; --i) {
    uint64_t record_addr = 0;
    uint64_t value = 0;
    DecodeTxnHeader(dev_->PeekBlock(kLogBase + i - 1), &record_addr, &value);
    if (record_addr == addr) {
      return value;
    }
  }
  return disk::U64OfBlock(dev_->PeekBlock(DataBlock(addr)));
}

std::pair<uint64_t, uint64_t> TxnLog::PeekHeaderForTesting() const {
  uint64_t committed = 0;
  uint64_t applied = 0;
  DecodeTxnHeader(dev_->PeekBlock(kHeaderBlock), &committed, &applied);
  return {committed, applied};
}

}  // namespace perennial::systems
