#include "src/systems/wal/wal_pair.h"

#include <string>

namespace perennial::systems {

namespace {
std::string BlockKey(uint64_t b) { return "wal[" + std::to_string(b) + "]"; }
}  // namespace

WalPair::WalPair(goose::World* world, Mutations mutations)
    : world_(world),
      disk_(world, 5, disk::BlockOfU64(0)),
      leases_(world),
      mutations_(mutations) {
  InitVolatile();
  // The commit flag is the transaction's linearization witness: whenever it
  // is set, the in-flight operation's helping token must be present (and
  // vice versa) so recovery is always justified in replaying the log.
  invariants_.Register("wal-commit-flag-matches-helping-token", [this] {
    uint64_t flag = disk::U64OfBlock(disk_.PeekBlock(kCommitBlock));
    if (flag != 0 && flag != 1) {
      return false;
    }
    return (flag == 1) == help_.Has(kTxnKey);
  });
}

void WalPair::InitVolatile() {
  mu_ = std::make_unique<goose::Mutex>(world_);
  for (uint64_t b = 0; b < 5; ++b) {
    block_leases_[b] = leases_.Issue(BlockKey(b));
  }
}

proc::Task<void> WalPair::WritePair(uint64_t x, uint64_t y, uint64_t op_id) {
  co_await mu_->Lock();
  for (uint64_t b = 0; b < 5; ++b) {
    leases_.Verify(block_leases_[b], "wal write");
  }
  if (mutations_.apply_before_commit) {
    // Bug: data blocks change before the log commits; a crash in between
    // tears the pair with no committed log to repair it from.
    (void)co_await disk_.Write(kDataBase, disk::BlockOfU64(x));
    (void)co_await disk_.Write(kDataBase + 1, disk::BlockOfU64(y));
    (void)co_await disk_.Write(kLogBase, disk::BlockOfU64(x));
    (void)co_await disk_.Write(kLogBase + 1, disk::BlockOfU64(y));
    co_await mu_->Unlock();
    co_return;
  }
  // 1. Log the transaction (crash here: flag clear, log ignored).
  (void)co_await disk_.Write(kLogBase, disk::BlockOfU64(x));
  (void)co_await disk_.Write(kLogBase + 1, disk::BlockOfU64(y));
  // 2. Commit point: one atomic flag write; the helping token is deposited
  //    in the same step (crash after this: recovery completes the txn).
  (void)co_await disk_.Write(kCommitBlock, disk::BlockOfU64(1));
  help_.Deposit(kTxnKey, cap::PendingOp{-1, op_id});
  // 3. Apply the log to the data blocks.
  (void)co_await disk_.Write(kDataBase, disk::BlockOfU64(x));
  (void)co_await disk_.Write(kDataBase + 1, disk::BlockOfU64(y));
  // 4. Clear the flag; the operation is no longer pending.
  (void)co_await disk_.Write(kCommitBlock, disk::BlockOfU64(0));
  help_.Withdraw(kTxnKey);
  co_await mu_->Unlock();
}

proc::Task<std::pair<uint64_t, uint64_t>> WalPair::ReadPair() {
  co_await mu_->Lock();
  Result<disk::Block> lo = co_await disk_.Read(kDataBase);
  Result<disk::Block> hi = co_await disk_.Read(kDataBase + 1);
  auto result = std::make_pair(disk::U64OfBlock(lo.value()), disk::U64OfBlock(hi.value()));
  co_await mu_->Unlock();
  co_return result;
}

proc::Task<void> WalPair::Recover(std::function<void(uint64_t)> helped) {
  if (mutations_.skip_recovery) {
    InitVolatile();
    co_return;
  }
  Result<disk::Block> flag = co_await disk_.Read(kCommitBlock);
  if (disk::U64OfBlock(flag.value()) == 1) {
    if (mutations_.recovery_discards_log) {
      // Bug: "recovery" throws the committed transaction away but still
      // claims to have completed it — the helping check must reject this.
      (void)co_await disk_.Write(kCommitBlock, disk::BlockOfU64(0));
      if (std::optional<cap::PendingOp> op = help_.Take(kTxnKey)) {
        helped(op->op_id);
      }
      InitVolatile();
      co_return;
    }
    // Replay: the commit record makes the transaction durable; apply it.
    Result<disk::Block> lo = co_await disk_.Read(kLogBase);
    Result<disk::Block> hi = co_await disk_.Read(kLogBase + 1);
    (void)co_await disk_.Write(kDataBase, std::move(lo).value());
    (void)co_await disk_.Write(kDataBase + 1, std::move(hi).value());
    // Clearing the flag completes the crashed operation (helping); flag
    // write, token take, and the helped claim are one atomic step.
    (void)co_await disk_.Write(kCommitBlock, disk::BlockOfU64(0));
    if (std::optional<cap::PendingOp> op = help_.Take(kTxnKey)) {
      helped(op->op_id);
    }
  }
  InitVolatile();
}

std::pair<uint64_t, uint64_t> WalPair::PeekData() const {
  return {disk::U64OfBlock(disk_.PeekBlock(kDataBase)),
          disk::U64OfBlock(disk_.PeekBlock(kDataBase + 1))};
}

}  // namespace perennial::systems
