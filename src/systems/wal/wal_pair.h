// The write-ahead-logging crash-safety pattern (§9.1, Table 3): atomic
// update of a pair of disk blocks via a log, with recovery helping.
//
// Layout on one disk:
//   block 0     — commit flag (1: the log holds a committed, possibly
//                 unapplied transaction)
//   blocks 1,2  — log: the transaction's new pair
//   blocks 3,4  — data: the applied pair
//
// A write logs the new values, commits with one atomic flag write (the
// commit point — a helping token is deposited in the same step), applies
// the log to the data blocks, and clears the flag (withdrawing the token).
// Recovery replays a committed-but-unapplied transaction and *takes* the
// helping token: it completes the crashed operation on its thread's behalf,
// exactly the §5.4 pattern.
#ifndef PERENNIAL_SRC_SYSTEMS_WAL_WAL_PAIR_H_
#define PERENNIAL_SRC_SYSTEMS_WAL_WAL_PAIR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/cap/crash_invariant.h"
#include "src/cap/helping.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

class WalPair {
 public:
  struct Mutations {
    bool apply_before_commit = false;  // update data blocks before the commit record
    bool skip_recovery = false;        // recovery does not replay the log
    bool recovery_discards_log = false;  // recovery clears the flag, claims help, applies nothing
  };

  WalPair(goose::World* world, Mutations mutations);
  explicit WalPair(goose::World* world) : WalPair(world, Mutations{}) {}

  proc::Task<void> WritePair(uint64_t x, uint64_t y, uint64_t op_id);
  proc::Task<std::pair<uint64_t, uint64_t>> ReadPair();

  // Replays any committed transaction, then rebuilds volatile state.
  // `helped` receives the op_id of a transaction recovery completed.
  proc::Task<void> Recover(std::function<void(uint64_t)> helped);

  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  std::pair<uint64_t, uint64_t> PeekData() const;

 private:
  static constexpr uint64_t kCommitBlock = 0;
  static constexpr uint64_t kLogBase = 1;
  static constexpr uint64_t kDataBase = 3;
  static constexpr const char* kTxnKey = "wal:txn";

  void InitVolatile();

  goose::World* world_;
  disk::Disk disk_;
  cap::LeaseRegistry leases_;
  cap::HelpRegistry help_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::unique_ptr<goose::Mutex> mu_;
  cap::Lease block_leases_[5];
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_WAL_WAL_PAIR_H_
