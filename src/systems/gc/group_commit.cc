#include "src/systems/gc/group_commit.h"

namespace perennial::systems {

GroupCommit::GroupCommit(goose::World* world, uint64_t capacity, Mutations mutations)
    : world_(world),
      capacity_(capacity),
      disk_(world, capacity + 1, disk::BlockOfU64(0)),
      leases_(world),
      mutations_(mutations) {
  world->Register(this);
  InitVolatile();
  invariants_.Register("log-count-in-range", [this] {
    return disk::U64OfBlock(disk_.PeekBlock(kCountBlock)) <= capacity_;
  });
}

void GroupCommit::InitVolatile() {
  mu_ = std::make_unique<goose::Mutex>(world_);
  count_lease_ = leases_.Issue("gc[count]");
}

proc::Task<void> GroupCommit::Write(uint64_t v) {
  co_await mu_->Lock();
  buffer_.push_back(v);
  co_await mu_->Unlock();
}

proc::Task<uint64_t> GroupCommit::Read() {
  co_await mu_->Lock();
  uint64_t result = 0;
  if (!buffer_.empty()) {
    result = buffer_.back();
  } else {
    Result<disk::Block> count_block = co_await disk_.Read(kCountBlock);
    uint64_t count = disk::U64OfBlock(count_block.value());
    if (count > 0) {
      Result<disk::Block> value = co_await disk_.Read(count);
      result = disk::U64OfBlock(value.value());
    }
  }
  co_await mu_->Unlock();
  co_return result;
}

proc::Task<void> GroupCommit::Flush() {
  co_await mu_->Lock();
  if (buffer_.empty()) {
    co_await mu_->Unlock();
    co_return;
  }
  Result<disk::Block> count_block = co_await disk_.Read(kCountBlock);
  uint64_t count = disk::U64OfBlock(count_block.value());
  PCC_ENSURE(count + buffer_.size() <= capacity_, "group commit: log capacity exceeded");
  leases_.Verify(count_lease_, "gc flush");
  if (mutations_.commit_count_first) {
    // Bug: the count advances before the values land; a crash in between
    // makes the "committed" tail garbage (zero blocks).
    (void)co_await disk_.Write(kCountBlock, disk::BlockOfU64(count + buffer_.size()));
  }
  for (size_t i = 0; i < buffer_.size(); ++i) {
    (void)co_await disk_.Write(count + 1 + i, disk::BlockOfU64(buffer_[i]));
  }
  if (!mutations_.commit_count_first) {
    // Commit point: one count write makes the whole batch durable.
    (void)co_await disk_.Write(kCountBlock, disk::BlockOfU64(count + buffer_.size()));
  }
  buffer_.clear();
  co_await mu_->Unlock();
}

proc::Task<void> GroupCommit::Recover() {
  // Buffered transactions died with the crash (the spec allows this); the
  // durable log is consistent by construction. Rebuild volatile state.
  InitVolatile();
  co_return;
}

uint64_t GroupCommit::PeekDurable() const {
  uint64_t count = disk::U64OfBlock(disk_.PeekBlock(kCountBlock));
  return count == 0 ? 0 : disk::U64OfBlock(disk_.PeekBlock(count));
}

}  // namespace perennial::systems
