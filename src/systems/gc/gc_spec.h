// Specification for group commit (§9.1): a single logical value with
// buffered writes. The crash transition is where this spec differs from
// every other example — it is *allowed* to lose transactions, but only
// un-flushed ones, and only as a suffix (any prefix of the buffer may have
// been committed by a flush racing the crash).
#ifndef PERENNIAL_SRC_SYSTEMS_GC_GC_SPEC_H_
#define PERENNIAL_SRC_SYSTEMS_GC_GC_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tsys/transition.h"

namespace perennial::systems {

struct GcSpec {
  struct State {
    uint64_t durable = 0;
    std::vector<uint64_t> buffer;
    friend bool operator==(const State&, const State&) = default;
  };
  enum class Kind { kWrite, kRead, kFlush };
  struct Op {
    Kind kind = Kind::kRead;
    uint64_t v = 0;
  };
  using Ret = uint64_t;  // reads: the logical value; writes/flushes: 0

  State Initial() const { return {}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    switch (op.kind) {
      case Kind::kWrite: {
        State next = s;
        next.buffer.push_back(op.v);
        return tsys::Outcome<State, Ret>::One(std::move(next), 0);
      }
      case Kind::kRead: {
        uint64_t value = s.buffer.empty() ? s.durable : s.buffer.back();
        return tsys::Outcome<State, Ret>::One(s, value);
      }
      case Kind::kFlush: {
        State next = s;
        if (!next.buffer.empty()) {
          next.durable = next.buffer.back();
          next.buffer.clear();
        }
        return tsys::Outcome<State, Ret>::One(std::move(next), 0);
      }
    }
    return tsys::Outcome<State, Ret>::None();
  }

  // Crash: any prefix of the buffer may have reached disk; the rest is
  // lost. (k = 0 means nothing extra committed.)
  std::vector<State> CrashSteps(const State& s) const {
    std::vector<State> out;
    for (size_t k = 0; k <= s.buffer.size(); ++k) {
      State next;
      next.durable = k == 0 ? s.durable : s.buffer[k - 1];
      bool duplicate = false;
      for (const State& seen : out) {
        duplicate = duplicate || seen == next;
      }
      if (!duplicate) {
        out.push_back(std::move(next));
      }
    }
    return out;
  }

  static std::string StateKey(const State& s) {
    std::string key = std::to_string(s.durable) + "|";
    for (uint64_t v : s.buffer) {
      key += std::to_string(v) + ",";
    }
    return key;
  }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) {
    switch (op.kind) {
      case Kind::kWrite:
        return "buffered_write(" + std::to_string(op.v) + ")";
      case Kind::kRead:
        return "read()";
      case Kind::kFlush:
        return "flush()";
    }
    return "?";
  }

  static Op MakeWrite(uint64_t v) { return Op{Kind::kWrite, v}; }
  static Op MakeRead() { return Op{Kind::kRead, 0}; }
  static Op MakeFlush() { return Op{Kind::kFlush, 0}; }
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_GC_GC_SPEC_H_
