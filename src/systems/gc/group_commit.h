// The group-commit pattern (§9.1, Table 3): buffered transactions with
// amortized durable commits, and a specification that says precisely when
// transactions may be lost.
//
// Writes append to an in-memory buffer and return immediately — fast, but
// a crash loses buffered transactions (the spec's crash transition permits
// keeping any prefix of the buffer). Flush() writes the buffered values to
// an on-disk log and commits them all with one atomic count-block write,
// amortizing the commit cost across the batch.
//
// Layout on one disk:
//   block 0              — count of committed log entries (the commit point)
//   blocks 1..capacity   — the value log
// The logical durable value is log[count] (0 when the count is 0).
#ifndef PERENNIAL_SRC_SYSTEMS_GC_GROUP_COMMIT_H_
#define PERENNIAL_SRC_SYSTEMS_GC_GROUP_COMMIT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cap/crash_invariant.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

class GroupCommit : public goose::CrashAware {
 public:
  struct Mutations {
    bool commit_count_first = false;  // advance the count before writing values
  };

  GroupCommit(goose::World* world, uint64_t capacity, Mutations mutations);
  GroupCommit(goose::World* world, uint64_t capacity)
      : GroupCommit(world, capacity, Mutations{}) {}

  // Buffers v as the newest transaction; durable only after a Flush.
  proc::Task<void> Write(uint64_t v);

  // Returns the current logical value (buffered writes included).
  proc::Task<uint64_t> Read();

  // Durably commits every buffered transaction with one count write.
  proc::Task<void> Flush();

  // The buffer is volatile; recovery only rebuilds locks and leases.
  proc::Task<void> Recover();

  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  // Crash model: the buffered transactions are lost.
  void OnCrash() override { buffer_.clear(); }

  // Harness accessors.
  uint64_t PeekDurable() const;
  size_t BufferedForTesting() const { return buffer_.size(); }

 private:
  static constexpr uint64_t kCountBlock = 0;

  void InitVolatile();

  goose::World* world_;
  uint64_t capacity_;
  disk::Disk disk_;
  cap::LeaseRegistry leases_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::unique_ptr<goose::Mutex> mu_;
  cap::Lease count_lease_;
  std::vector<uint64_t> buffer_;  // volatile (protected by mu_)
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_GC_GROUP_COMMIT_H_
