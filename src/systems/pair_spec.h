// Shared specification for the shadow-copy and write-ahead-log examples
// (§9.1): an atomically updated pair of values, durable across crashes.
#ifndef PERENNIAL_SRC_SYSTEMS_PAIR_SPEC_H_
#define PERENNIAL_SRC_SYSTEMS_PAIR_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/tsys/transition.h"

namespace perennial::systems {

struct PairSpec {
  struct State {
    uint64_t a = 0;
    uint64_t b = 0;
    friend bool operator==(const State&, const State&) = default;
  };
  struct Op {
    bool is_write = false;
    uint64_t x = 0;
    uint64_t y = 0;
  };
  using Ret = std::pair<uint64_t, uint64_t>;  // reads: the pair; writes: (0,0)

  State Initial() const { return {}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (op.is_write) {
      return tsys::Outcome<State, Ret>::One(State{op.x, op.y}, Ret{0, 0});
    }
    return tsys::Outcome<State, Ret>::One(s, Ret{s.a, s.b});
  }

  // Updates are atomic even across crashes: nothing is lost, nothing tears.
  std::vector<State> CrashSteps(const State& s) const { return {s}; }

  static std::string StateKey(const State& s) {
    return std::to_string(s.a) + "," + std::to_string(s.b);
  }
  static std::string RetKey(const Ret& r) {
    return std::to_string(r.first) + "," + std::to_string(r.second);
  }
  static std::string OpName(const Op& op) {
    if (op.is_write) {
      return "write_pair(" + std::to_string(op.x) + ", " + std::to_string(op.y) + ")";
    }
    return "read_pair()";
  }

  static Op MakeRead() { return Op{false, 0, 0}; }
  static Op MakeWrite(uint64_t x, uint64_t y) { return Op{true, x, y}; }
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_PAIR_SPEC_H_
