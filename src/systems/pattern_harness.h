// Checker harnesses binding the shadow-copy, WAL, and group-commit
// implementations to their specifications (repl has its own harness in
// repl/repl_harness.h).
#ifndef PERENNIAL_SRC_SYSTEMS_PATTERN_HARNESS_H_
#define PERENNIAL_SRC_SYSTEMS_PATTERN_HARNESS_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/refine/explorer.h"
#include "src/systems/gc/gc_spec.h"
#include "src/systems/gc/group_commit.h"
#include "src/systems/pair_spec.h"
#include "src/systems/shadow/shadow_pair.h"
#include "src/systems/wal/wal_pair.h"

namespace perennial::systems {

struct ShadowHarnessOptions {
  std::vector<std::vector<PairSpec::Op>> client_ops;
  ShadowPair::Mutations mutations;
  int observe_repeats = 1;
};

inline refine::Instance<PairSpec> MakeShadowInstance(const ShadowHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<ShadowPair> sys;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->sys = std::make_unique<ShadowPair>(&bundle->world, options.mutations);
  ShadowPair* sys = bundle->sys.get();

  refine::Instance<PairSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = &sys->crash_invariants();
  inst.client_ops = options.client_ops;
  inst.run_op = [sys](int, uint64_t, PairSpec::Op op) -> proc::Task<PairSpec::Ret> {
    if (op.is_write) {
      co_await sys->WritePair(op.x, op.y);
      co_return PairSpec::Ret{0, 0};
    }
    co_return co_await sys->ReadPair();
  };
  inst.recover = [sys](refine::History<PairSpec>*) -> proc::Task<void> {
    co_await sys->Recover();
  };
  for (int repeat = 0; repeat < options.observe_repeats; ++repeat) {
    inst.observer_ops.push_back(PairSpec::MakeRead());
  }
  return inst;
}

struct WalHarnessOptions {
  std::vector<std::vector<PairSpec::Op>> client_ops;
  WalPair::Mutations mutations;
  std::vector<PairSpec::Op> observer_ops = {PairSpec::MakeRead()};
};

inline refine::Instance<PairSpec> MakeWalInstance(const WalHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<WalPair> sys;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->sys = std::make_unique<WalPair>(&bundle->world, options.mutations);
  WalPair* sys = bundle->sys.get();

  refine::Instance<PairSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = &sys->crash_invariants();
  inst.client_ops = options.client_ops;
  inst.run_op = [sys](int, uint64_t op_id, PairSpec::Op op) -> proc::Task<PairSpec::Ret> {
    if (op.is_write) {
      co_await sys->WritePair(op.x, op.y, op_id);
      co_return PairSpec::Ret{0, 0};
    }
    co_return co_await sys->ReadPair();
  };
  inst.recover = [sys](refine::History<PairSpec>* history) -> proc::Task<void> {
    co_await sys->Recover([history](uint64_t op_id) { history->Helped(op_id); });
  };
  inst.observer_ops = options.observer_ops;
  return inst;
}

struct GcHarnessOptions {
  uint64_t capacity = 8;
  std::vector<std::vector<GcSpec::Op>> client_ops;
  GroupCommit::Mutations mutations;
  std::vector<GcSpec::Op> observer_ops = {GcSpec::MakeRead()};
};

inline refine::Instance<GcSpec> MakeGcInstance(const GcHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<GroupCommit> sys;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->sys = std::make_unique<GroupCommit>(&bundle->world, options.capacity, options.mutations);
  GroupCommit* sys = bundle->sys.get();

  refine::Instance<GcSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.crash_invariants = &sys->crash_invariants();
  inst.client_ops = options.client_ops;
  inst.run_op = [sys](int, uint64_t, GcSpec::Op op) -> proc::Task<uint64_t> {
    switch (op.kind) {
      case GcSpec::Kind::kWrite:
        co_await sys->Write(op.v);
        co_return 0;
      case GcSpec::Kind::kRead:
        co_return co_await sys->Read();
      case GcSpec::Kind::kFlush:
        co_await sys->Flush();
        co_return 0;
    }
    co_return 0;
  };
  inst.recover = [sys](refine::History<GcSpec>*) -> proc::Task<void> { co_await sys->Recover(); };
  inst.observer_ops = options.observer_ops;
  return inst;
}

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_PATTERN_HARNESS_H_
