#include "src/systems/shadow/shadow_pair.h"

#include <string>

namespace perennial::systems {

namespace {
std::string BlockKey(uint64_t b) { return "shadow[" + std::to_string(b) + "]"; }
}  // namespace

ShadowPair::ShadowPair(goose::World* world, Mutations mutations)
    : world_(world),
      disk_(world, 5, disk::BlockOfU64(0)),
      leases_(world),
      mutations_(mutations) {
  InitVolatile();
  // The pointer block always holds a valid copy index: a torn or wild
  // pointer would make the durable state unreadable after a crash.
  invariants_.Register("shadow-pointer-valid", [this] {
    uint64_t ptr = disk::U64OfBlock(disk_.PeekBlock(kPtrBlock));
    return ptr == 0 || ptr == 1;
  });
}

void ShadowPair::InitVolatile() {
  mu_ = std::make_unique<goose::Mutex>(world_);
  ptr_lease_ = leases_.Issue(BlockKey(kPtrBlock));
  for (uint64_t b = 0; b < 4; ++b) {
    copy_leases_[b] = leases_.Issue(BlockKey(1 + b));
  }
}

proc::Task<void> ShadowPair::WritePair(uint64_t x, uint64_t y) {
  co_await mu_->Lock();
  Result<disk::Block> ptr_block = co_await disk_.Read(kPtrBlock);
  uint64_t active = disk::U64OfBlock(ptr_block.value());
  uint64_t target = mutations_.in_place_update ? active : 1 - active;
  leases_.Verify(copy_leases_[CopyBase(target) - 1], "shadow write lo");
  leases_.Verify(copy_leases_[CopyBase(target)], "shadow write hi");
  if (mutations_.flip_before_data) {
    leases_.Verify(ptr_lease_, "shadow flip");
    (void)co_await disk_.Write(kPtrBlock, disk::BlockOfU64(target));
  }
  (void)co_await disk_.Write(CopyBase(target), disk::BlockOfU64(x));
  (void)co_await disk_.Write(CopyBase(target) + 1, disk::BlockOfU64(y));
  if (!mutations_.in_place_update && !mutations_.flip_before_data) {
    // Commit point: one atomic block write makes the new pair current.
    leases_.Verify(ptr_lease_, "shadow flip");
    (void)co_await disk_.Write(kPtrBlock, disk::BlockOfU64(target));
  }
  co_await mu_->Unlock();
}

proc::Task<std::pair<uint64_t, uint64_t>> ShadowPair::ReadPair() {
  co_await mu_->Lock();
  Result<disk::Block> ptr_block = co_await disk_.Read(kPtrBlock);
  uint64_t active = disk::U64OfBlock(ptr_block.value());
  Result<disk::Block> lo = co_await disk_.Read(CopyBase(active));
  Result<disk::Block> hi = co_await disk_.Read(CopyBase(active) + 1);
  auto result = std::make_pair(disk::U64OfBlock(lo.value()), disk::U64OfBlock(hi.value()));
  co_await mu_->Unlock();
  co_return result;
}

proc::Task<void> ShadowPair::Recover() {
  // The shadow copy is invisible after a crash: durable state is already
  // consistent. Recovery only re-creates the lock and re-leases the blocks
  // from their master copies (§5.3 rule 3).
  InitVolatile();
  co_return;
}

std::pair<uint64_t, uint64_t> ShadowPair::PeekPair() const {
  uint64_t active = disk::U64OfBlock(disk_.PeekBlock(kPtrBlock));
  return {disk::U64OfBlock(disk_.PeekBlock(CopyBase(active))),
          disk::U64OfBlock(disk_.PeekBlock(CopyBase(active) + 1))};
}

}  // namespace perennial::systems
