// The shadow-copy crash-safety pattern (§9.1, Table 3): atomic update of a
// pair of disk blocks.
//
// Layout on one disk:
//   block 0          — pointer: which copy is active (0 or 1)
//   blocks 1,2       — copy A of the pair
//   blocks 3,4       — copy B of the pair
//
// A write prepares the new pair in the *inactive* copy, then commits with a
// single atomic write of the pointer block. A crash before the pointer flip
// leaves the old pair intact and the shadow invisible; recovery has nothing
// to repair beyond rebuilding volatile state (locks + leases) — the pattern
// Mailboat also uses for its spool files.
#ifndef PERENNIAL_SRC_SYSTEMS_SHADOW_SHADOW_PAIR_H_
#define PERENNIAL_SRC_SYSTEMS_SHADOW_SHADOW_PAIR_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "src/cap/crash_invariant.h"
#include "src/cap/lease.h"
#include "src/disk/disk.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/task.h"

namespace perennial::systems {

class ShadowPair {
 public:
  struct Mutations {
    bool in_place_update = false;  // skip the shadow: write the active copy directly
    bool flip_before_data = false; // commit the pointer before writing the new copy
  };

  ShadowPair(goose::World* world, Mutations mutations);
  explicit ShadowPair(goose::World* world) : ShadowPair(world, Mutations{}) {}

  // Atomically replaces the pair with (x, y).
  proc::Task<void> WritePair(uint64_t x, uint64_t y);

  // Atomically reads the pair.
  proc::Task<std::pair<uint64_t, uint64_t>> ReadPair();

  // Rebuilds volatile state; the durable representation needs no repair.
  proc::Task<void> Recover();

  const cap::CrashInvariants& crash_invariants() const { return invariants_; }

  // Harness: the committed pair as recorded on disk.
  std::pair<uint64_t, uint64_t> PeekPair() const;

 private:
  static constexpr uint64_t kPtrBlock = 0;
  static uint64_t CopyBase(uint64_t which) { return 1 + which * 2; }

  void InitVolatile();

  goose::World* world_;
  disk::Disk disk_;
  cap::LeaseRegistry leases_;
  cap::CrashInvariants invariants_;
  Mutations mutations_;
  std::unique_ptr<goose::Mutex> mu_;
  cap::Lease ptr_lease_;
  cap::Lease copy_leases_[4];
};

}  // namespace perennial::systems

#endif  // PERENNIAL_SRC_SYSTEMS_SHADOW_SHADOW_PAIR_H_
