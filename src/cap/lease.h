// Recovery leases (§5.3), enforced at runtime.
//
// Perennial splits every durable capability d[a] ↦ v into a persistent
// *master copy* (kept in the crash invariant, available to recovery) and a
// volatile *lease* (held by running threads, usually protected by a lock).
// The three rules of Table 1 become dynamic checks here:
//
//  1. Updating a durable resource requires presenting the current lease
//     (systems call LeaseRegistry::Verify on their write paths).
//  2. Only one lease per resource exists at a time: issuing a second lease
//     for the same resource in the same crash generation is UB.
//  3. Both the master and the lease are tied to the crash generation; a
//     crash invalidates every outstanding lease, and recovery synthesizes
//     fresh ones from the master copies (Issue after the generation bump).
//
// The "master copy" needs no separate token object at runtime: durable
// state itself (disk blocks, file-system trees) plays that role, and crash
// invariants (crash_invariant.h) are the predicates recovery relies on.
#ifndef PERENNIAL_SRC_CAP_LEASE_H_
#define PERENNIAL_SRC_CAP_LEASE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"

namespace perennial::cap {

// An exclusive, generation-stamped permission to modify one durable
// resource. Tokens are freely movable/copyable values; exclusivity is
// enforced by the registry (only the most recently issued serial for a
// resource is valid, and re-issuing within a generation is UB).
struct Lease {
  std::string resource;
  uint64_t gen = UINT64_MAX;
  uint64_t serial = 0;
};

class LeaseRegistry : public goose::CrashAware {
 public:
  explicit LeaseRegistry(goose::World* world)
      : world_(world), instance_(world->NextResourceId()) {
    world->Register(this);
  }

  // Synthesizes the lease for `resource` in the current generation.
  // Permitted once per resource per generation (rule 2); recovery calls
  // this after a crash to re-lease every durable resource (rule 3).
  Lease Issue(const std::string& resource) {
    proc::RecordAccess(KeyRes(resource), /*write=*/true);
    uint64_t gen = world_->generation();
    auto [it, inserted] = issued_.try_emplace(resource, next_serial_);
    if (!inserted) {
      RaiseUb("lease for '" + resource + "' already issued in this generation");
    }
    return Lease{resource, gen, next_serial_++};
  }

  // Verifies that `lease` is the valid, current-generation lease for its
  // resource; systems call this on every leased write path (rule 1).
  void Verify(const Lease& lease, const char* op) const {
    proc::RecordAccess(KeyRes(lease.resource), /*write=*/false);
    if (lease.gen != world_->generation()) {
      RaiseUb(std::string(op) + ": lease for '" + lease.resource +
              "' is from a previous crash generation");
    }
    auto it = issued_.find(lease.resource);
    if (it == issued_.end() || it->second != lease.serial) {
      RaiseUb(std::string(op) + ": stale or forged lease for '" + lease.resource + "'");
    }
  }

  // Voluntarily returns a lease (e.g. when a resource is destroyed); the
  // resource may then be leased again within the same generation.
  void Release(const Lease& lease) {
    proc::RecordAccess(KeyRes(lease.resource), /*write=*/true);
    Verify(lease, "Release");
    issued_.erase(lease.resource);
  }

  bool IsLeased(const std::string& resource) const { return issued_.count(resource) > 0; }

  // Crash: every lease is invalidated (leases live in volatile memory).
  void OnCrash() override { issued_.clear(); }

 private:
  uint64_t KeyRes(const std::string& resource) const {
    return proc::MixResourceKey(proc::kResRegistry, instance_, resource);
  }

  goose::World* world_;
  uint64_t instance_;  // distinguishes this registry's keys in footprints
  std::map<std::string, uint64_t> issued_;  // resource -> live serial
  uint64_t next_serial_ = 1;
};

}  // namespace perennial::cap

#endif  // PERENNIAL_SRC_CAP_LEASE_H_
