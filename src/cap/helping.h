// Recovery helping (§5.4), enforced at runtime.
//
// When an operation reaches the point where a crash would leave visible
// partial state that recovery will complete (e.g. the replicated disk
// between its two writes, or a WAL commit record that is durable but not
// yet applied), the operation *deposits* its pending-op token — the
// paper's j ⇒ op assertion — into this registry, keyed by the resource
// recovery will inspect. Completing normally withdraws the token.
//
// The registry is DURABLE: it models an assertion stored in the crash
// invariant, so it survives crashes and recovery may Take() a token to
// justify completing the operation on the crashed thread's behalf.
// Take() returns the operation id, which the history recorder marks as
// "helped": the refinement checker then requires that the op's effect is
// linearized before the crash. Recovery completing work with *no* token to
// justify it is exactly the class of bug (e.g. "recovery zeroes both
// disks") the checker catches via the spec-side search.
#ifndef PERENNIAL_SRC_CAP_HELPING_H_
#define PERENNIAL_SRC_CAP_HELPING_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/base/panic.h"
#include "src/proc/footprint.h"

namespace perennial::cap {

// A pending spec-level operation: thread j is mid-flight in op `op_id`
// (an opaque identifier assigned by the harness when the op was invoked).
struct PendingOp {
  int j = -1;           // spec-level thread id
  uint64_t op_id = 0;   // harness-assigned operation instance id
};

class HelpRegistry {
 public:
  // Deposits the pending op under `key` (e.g. "addr:3"). At most one token
  // per key: depositing over an existing token is UB — it would mean two
  // threads both claim the in-flight update of one resource, which the
  // locking discipline must prevent.
  void Deposit(const std::string& key, PendingOp op) {
    RecordMutation(key);
    auto [it, inserted] = tokens_.try_emplace(key, op);
    if (!inserted) {
      RaiseUb("helping: second pending op deposited for '" + key + "'");
    }
  }

  // Withdraws the token after the operation completes normally.
  void Withdraw(const std::string& key) {
    RecordMutation(key);
    size_t erased = tokens_.erase(key);
    if (erased == 0) {
      RaiseUb("helping: withdraw of absent token '" + key + "'");
    }
  }

  // Recovery: consumes the token for `key`, acquiring the right to complete
  // the operation on the crashed thread's behalf. nullopt when no operation
  // was in flight (the common, already-consistent case).
  std::optional<PendingOp> Take(const std::string& key) {
    RecordMutation(key);
    auto it = tokens_.find(key);
    if (it == tokens_.end()) {
      return std::nullopt;
    }
    PendingOp op = it->second;
    tokens_.erase(it);
    return op;
  }

  bool Has(const std::string& key) const { return tokens_.count(key) > 0; }
  size_t size() const { return tokens_.size(); }
  void Clear() { tokens_.clear(); }

 private:
  // Registries have no World handle, so keys hash under instance 0 — two
  // registries' identical keys alias, which only adds dependence (sound).
  // Token mutations are also invariant-visible: crash invariants consult
  // Has(), so deposits/withdrawals join the shared invariant resource.
  void RecordMutation(const std::string& key) {
    proc::RecordAccess(proc::MixResourceKey(proc::kResRegistry, 0, key), /*write=*/true);
    proc::RecordAccess(proc::MixResource(proc::kResInvariant, 0), /*write=*/true);
  }

  std::map<std::string, PendingOp> tokens_;
};

}  // namespace perennial::cap

#endif  // PERENNIAL_SRC_CAP_HELPING_H_
