// Lower-bound leases (§8.3): lease(dir, ⊇N).
//
// Mailboat's mailbox lock cannot hold an ordinary exclusive lease on the
// directory contents: delivery legitimately adds files *while the lock is
// held*. The paper's solution is a lower-bound lease — the lock holder
// knows the directory contains *at least* the names N it listed, may
// delete exactly those, and tolerates others creating new names.
//
// Runtime enforcement: the registry tracks, per resource, the holder's
// lower-bound set for the current crash generation.
//  * Acquire(resource, names) — takes the lease with lower bound `names`;
//    a second acquisition before release is UB (it is still exclusive
//    *as a lease* — only one thread may hold deletion rights).
//  * CheckDelete(lease, name) — deleting a name requires holding the
//    current lease and the name being in the bound (you may only delete
//    what you listed — §8.1's contract).
//  * NoteCreate(resource, name) — anyone may add names, lease or not;
//    the holder's bound is unaffected (the bound is a ⊇, not equality).
//  * Crashes invalidate every bounded lease, like all volatile capabilities.
#ifndef PERENNIAL_SRC_CAP_BOUNDED_LEASE_H_
#define PERENNIAL_SRC_CAP_BOUNDED_LEASE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"

namespace perennial::cap {

struct BoundedLease {
  std::string resource;
  uint64_t gen = UINT64_MAX;
  uint64_t serial = 0;
};

class BoundedLeaseRegistry : public goose::CrashAware {
 public:
  explicit BoundedLeaseRegistry(goose::World* world)
      : world_(world), instance_(world->NextResourceId()) {
    world->Register(this);
  }

  // Takes the (exclusive) lower-bound lease on `resource`, recording that
  // it currently contains at least `names`.
  BoundedLease Acquire(const std::string& resource, std::vector<std::string> names) {
    Rec(resource, /*write=*/true);
    // The serial counter is registry-global: any two acquisitions are
    // order-dependent (the serials they mint differ).
    proc::RecordAccess(proc::MixResource(proc::kResRegistry, instance_, ~0ull), /*write=*/true);
    std::scoped_lock host_lock(mu_);
    auto [it, inserted] = held_.try_emplace(resource);
    if (!inserted) {
      RaiseUb("bounded lease for '" + resource + "' already held");
    }
    it->second.serial = next_serial_++;
    it->second.bound.insert(names.begin(), names.end());
    return BoundedLease{resource, world_->generation(), it->second.serial};
  }

  // Deleting `name` requires the current lease and name ∈ bound; the name
  // leaves the bound (it can only be deleted once).
  void CheckDelete(const BoundedLease& lease, const std::string& name) {
    Rec(lease.resource, /*write=*/true);  // the bound shrinks
    std::scoped_lock host_lock(mu_);
    Holding& holding = Resolve(lease, "CheckDelete");
    if (holding.bound.erase(name) == 0) {
      RaiseUb("bounded lease on '" + lease.resource + "': deleting un-listed name '" + name +
              "'");
    }
  }

  // Creation by any thread is compatible with the lower bound; the holder
  // may fold a name it learns about into its own bound.
  void ExtendBound(const BoundedLease& lease, const std::string& name) {
    Rec(lease.resource, /*write=*/true);
    std::scoped_lock host_lock(mu_);
    Resolve(lease, "ExtendBound").bound.insert(name);
  }

  void Release(const BoundedLease& lease) {
    Rec(lease.resource, /*write=*/true);
    std::scoped_lock host_lock(mu_);
    Resolve(lease, "Release");
    held_.erase(lease.resource);
  }

  bool IsHeld(const std::string& resource) const {
    Rec(resource, /*write=*/false);
    std::scoped_lock host_lock(mu_);
    return held_.count(resource) > 0;
  }

  // All bounded leases are volatile capabilities.
  void OnCrash() override { held_.clear(); }

 private:
  struct Holding {
    uint64_t serial = 0;
    std::set<std::string> bound;
  };

  // DPOR access record for one leased resource (src/proc/footprint.h); the
  // same (instance, key) scheme the help/lease registries use.
  void Rec(const std::string& resource, bool write) const {
    proc::RecordAccess(proc::MixResourceKey(proc::kResRegistry, instance_, resource), write);
  }

  Holding& Resolve(const BoundedLease& lease, const char* op) {
    if (lease.gen != world_->generation()) {
      RaiseUb(std::string(op) + ": bounded lease from a previous crash generation");
    }
    auto it = held_.find(lease.resource);
    if (it == held_.end() || it->second.serial != lease.serial) {
      RaiseUb(std::string(op) + ": stale or forged bounded lease for '" + lease.resource + "'");
    }
    return it->second;
  }

  goose::World* world_;
  uint64_t instance_;  // footprint namespace for this registry
  // Host-level: Mailboat runs natively in benchmarks, so registry state is
  // touched from several OS threads (in simulation the lock is uncontended).
  mutable std::mutex mu_;
  std::map<std::string, Holding> held_;
  uint64_t next_serial_ = 1;
};

}  // namespace perennial::cap

#endif  // PERENNIAL_SRC_CAP_BOUNDED_LEASE_H_
