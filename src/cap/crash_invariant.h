// Crash invariants (§5.1), enforced at runtime.
//
// In Perennial, the distinguished crash invariant C is the only capability
// recovery starts with: it must hold at *every* step of execution, and it
// must mention only durable resources (the crash-invariance and idempotence
// side conditions of Theorem 2).
//
// At runtime, a crash invariant is a named predicate over durable state.
// The crash explorer evaluates every registered predicate at every
// potential crash point; a false predicate is a verification failure,
// reported with the schedule that reached it. Because the predicates are
// (re-)checked after recovery completes and recovery itself is subjected to
// crash points, the idempotence obligation is exercised too.
#ifndef PERENNIAL_SRC_CAP_CRASH_INVARIANT_H_
#define PERENNIAL_SRC_CAP_CRASH_INVARIANT_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace perennial::cap {

class CrashInvariants {
 public:
  using Predicate = std::function<bool()>;

  // Registers a named invariant. Predicates must read durable state only
  // (harness-level Peek accessors), never modeled volatile state.
  void Register(std::string name, Predicate pred) {
    invariants_.emplace_back(std::move(name), std::move(pred));
  }

  // Evaluates all invariants; returns the name of the first violated one.
  std::optional<std::string> FirstViolation() const {
    for (const auto& [name, pred] : invariants_) {
      if (!pred()) {
        return name;
      }
    }
    return std::nullopt;
  }

  bool AllHold() const { return !FirstViolation().has_value(); }
  size_t size() const { return invariants_.size(); }
  void Clear() { invariants_.clear(); }

 private:
  std::vector<std::pair<std::string, Predicate>> invariants_;
};

}  // namespace perennial::cap

#endif  // PERENNIAL_SRC_CAP_CRASH_INVARIANT_H_
