#include "src/base/strutil.h"

#include <cctype>

namespace perennial {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string HexId(uint64_t id) {
  std::string out;
  out.reserve(16);
  AppendHexId(out, id);
  return out;
}

void AppendHexId(std::string& out, uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  char digits[16];
  for (int i = 15; i >= 0; --i) {
    digits[i] = kHex[id & 0xF];
    id >>= 4;
  }
  out.append(digits, sizeof(digits));
}

}  // namespace perennial
