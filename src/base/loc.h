// Source lines-of-code counting, used by the Table 2/3/4 benchmarks to
// regenerate the paper's effort tables from this repository's own sources.
//
// Counting rule: a line counts if it contains any non-whitespace character
// and is not purely a comment line (// or a /* */ block). This approximates
// `cloc`-style "code lines" closely enough for an effort comparison.
#ifndef PERENNIAL_SRC_BASE_LOC_H_
#define PERENNIAL_SRC_BASE_LOC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace perennial {

struct LocCount {
  uint64_t code = 0;
  uint64_t comment = 0;
  uint64_t blank = 0;

  uint64_t total() const { return code + comment + blank; }
  LocCount& operator+=(const LocCount& other) {
    code += other.code;
    comment += other.comment;
    blank += other.blank;
    return *this;
  }
};

// Counts one in-memory source buffer (C/C++ comment syntax).
LocCount CountSource(std::string_view contents);

// Counts a single file; returns zeroes if unreadable.
LocCount CountFile(const std::string& path);

// Recursively counts all files under `dir` whose names end in one of
// `suffixes` (e.g. {".h", ".cc"}).
LocCount CountTree(const std::string& dir, const std::vector<std::string>& suffixes);

// Locates the repository root by walking up from `hint` (or the current
// directory when empty) looking for DESIGN.md. Returns "" when not found.
std::string FindRepoRoot(const std::string& hint);

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_LOC_H_
