#include "src/base/loc.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace perennial {

namespace fs = std::filesystem;

LocCount CountSource(std::string_view contents) {
  LocCount count;
  bool in_block_comment = false;
  size_t pos = 0;
  while (pos <= contents.size()) {
    size_t eol = contents.find('\n', pos);
    std::string_view line =
        contents.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    bool has_code = false;
    bool has_comment = in_block_comment;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_block_comment) {
        has_comment = true;
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        has_comment = true;
        break;  // rest of line is a comment
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        has_comment = true;
        ++i;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        has_code = true;
      }
    }
    if (has_code) {
      ++count.code;
    } else if (has_comment) {
      ++count.comment;
    } else {
      ++count.blank;
    }
    if (eol == std::string_view::npos) {
      break;
    }
    pos = eol + 1;
    if (pos == contents.size()) {
      break;  // trailing newline: no extra empty line
    }
  }
  return count;
}

LocCount CountFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return CountSource(buf.str());
}

LocCount CountTree(const std::string& dir, const std::vector<std::string>& suffixes) {
  LocCount total;
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return total;
  }
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      break;
    }
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string name = it->path().filename().string();
    for (const std::string& suffix : suffixes) {
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        total += CountFile(it->path().string());
        break;
      }
    }
  }
  return total;
}

std::string FindRepoRoot(const std::string& hint) {
  std::error_code ec;
  fs::path cur = hint.empty() ? fs::current_path(ec) : fs::path(hint);
  for (int depth = 0; depth < 16 && !cur.empty(); ++depth) {
    if (fs::exists(cur / "DESIGN.md", ec)) {
      return cur.string();
    }
    fs::path parent = cur.parent_path();
    if (parent == cur) {
      break;
    }
    cur = parent;
  }
  return "";
}

}  // namespace perennial
