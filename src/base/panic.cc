#include "src/base/panic.h"

#include <cstdio>
#include <cstdlib>

namespace perennial {

void Panic(std::string_view msg, const char* file, int line) {
  std::fprintf(stderr, "panic: %.*s (%s:%d)\n", static_cast<int>(msg.size()), msg.data(), file,
               line);
  std::abort();
}

void RaiseUb(const std::string& msg) { throw UbViolation(msg); }

}  // namespace perennial
