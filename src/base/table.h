// Plain-text table rendering for the benchmark harnesses, so each bench can
// print the same rows/series the paper's tables and figures report.
#ifndef PERENNIAL_SRC_BASE_TABLE_H_
#define PERENNIAL_SRC_BASE_TABLE_H_

#include <string>
#include <vector>

namespace perennial {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Adds a horizontal rule before the next row.
  void AddRule();

  // Renders with column alignment; first column left-aligned, the rest
  // right-aligned (numeric convention).
  std::string Render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

// Formats a count with thousands separators ("8,930").
std::string WithCommas(uint64_t value);

// Formats a double with `digits` decimals.
std::string FixedDigits(double value, int digits);

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_TABLE_H_
