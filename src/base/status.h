// Minimal Status / Result<T> types for fallible operations.
//
// The file-system model and the POSIX backend return Result<T> so that
// callers handle failures explicitly (Core Guidelines E.x: use exceptions
// only for exceptional conditions; file-not-found is an expected outcome).
#ifndef PERENNIAL_SRC_BASE_STATUS_H_
#define PERENNIAL_SRC_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "src/base/panic.h"

namespace perennial {

enum class StatusCode {
  kOk,
  kNotFound,       // path / key does not exist
  kAlreadyExists,  // exclusive create hit an existing name
  kFailed,         // device failure (e.g. a dead disk)
  kInvalid,        // bad argument (out-of-range address, bad fd)
  kUnavailable,    // transient condition (retryable)
  kNoSpace,        // storage exhausted (ENOSPC/EDQUOT); clears when space frees
};

// Human-readable name of a status code ("ok", "not-found", ...).
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Failed(std::string msg) { return Status(StatusCode::kFailed, std::move(msg)); }
  static Status Invalid(std::string msg) { return Status(StatusCode::kInvalid, std::move(msg)); }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NoSpace(std::string msg) { return Status(StatusCode::kNoSpace, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    PCC_ENSURE(!std::get<Status>(rep_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    PCC_ENSURE(ok(), "Result::value on error: " + status().ToString());
    return std::get<T>(rep_);
  }
  T& value() & {
    PCC_ENSURE(ok(), "Result::value on error: " + status().ToString());
    return std::get<T>(rep_);
  }
  T&& value() && {
    PCC_ENSURE(ok(), "Result::value on error: " + status().ToString());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_STATUS_H_
