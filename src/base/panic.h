// Panic and invariant-checking primitives.
//
// Two failure channels are distinguished throughout the codebase:
//  * Panic / ENSURE: a bug in this library itself (or misuse of an API that
//    has no recovery story). Aborts the process.
//  * UbViolation: the *modeled program* triggered undefined behavior in the
//    Goose semantics (racy access, invalid capability use, out-of-bounds
//    spec transition). The refinement checker catches these and reports the
//    offending schedule, so they are thrown as exceptions.
#ifndef PERENNIAL_SRC_BASE_PANIC_H_
#define PERENNIAL_SRC_BASE_PANIC_H_

#include <stdexcept>
#include <string>
#include <string_view>

namespace perennial {

// Aborts the process with a message; used for internal invariant failures.
[[noreturn]] void Panic(std::string_view msg, const char* file, int line);

// Undefined behavior in the modeled semantics (Goose §6.1: races; cap layer:
// invalid capability use). Checkers catch this to reject an execution.
class UbViolation : public std::runtime_error {
 public:
  explicit UbViolation(const std::string& what) : std::runtime_error(what) {}
};

// Raises a UbViolation. Kept out-of-line so call sites stay small.
[[noreturn]] void RaiseUb(const std::string& msg);

}  // namespace perennial

// Internal invariant check: true in all builds (systems code; the cost is
// dwarfed by the modeled operations themselves).
#define PCC_ENSURE(cond, msg)                          \
  do {                                                 \
    if (!(cond)) {                                     \
      ::perennial::Panic((msg), __FILE__, __LINE__);   \
    }                                                  \
  } while (0)

#endif  // PERENNIAL_SRC_BASE_PANIC_H_
