// Small string helpers used across modules (no dependencies beyond <string>).
#ifndef PERENNIAL_SRC_BASE_STRUTIL_H_
#define PERENNIAL_SRC_BASE_STRUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace perennial {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `parts` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// ASCII uppercasing (protocol verbs are case-insensitive in SMTP/POP3).
std::string AsciiUpper(std::string_view s);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow.
bool ParseUint64(std::string_view s, uint64_t* out);

// Fixed-width hex rendering of a 64-bit id (16 lowercase hex digits); used
// for Mailboat's random message identifiers.
std::string HexId(uint64_t id);
// Appends the same 16 hex digits to `out` without a temporary string, for
// hot paths that build prefixed names ("tmp-<id>") in one allocation.
void AppendHexId(std::string& out, uint64_t id);

// Packs an exactly-4-character protocol verb into a big-endian uint32 after
// ASCII uppercasing ("helo" -> 'H','E','L','O'), for allocation-free verb
// dispatch in the SMTP/POP3 parsers (every verb in both subsets is 4
// characters). Returns 0 for any other token length, which matches no verb.
constexpr uint32_t VerbCode(std::string_view token) {
  if (token.size() != 4) {
    return 0;
  }
  uint32_t v = 0;
  for (char c : token) {
    auto u = static_cast<unsigned char>(c);
    if (u >= 'a' && u <= 'z') {
      u = static_cast<unsigned char>(u - ('a' - 'A'));
    }
    v = (v << 8) | u;
  }
  return v;
}

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_STRUTIL_H_
