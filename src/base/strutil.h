// Small string helpers used across modules (no dependencies beyond <string>).
#ifndef PERENNIAL_SRC_BASE_STRUTIL_H_
#define PERENNIAL_SRC_BASE_STRUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace perennial {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `parts` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// ASCII uppercasing (protocol verbs are case-insensitive in SMTP/POP3).
std::string AsciiUpper(std::string_view s);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow.
bool ParseUint64(std::string_view s, uint64_t* out);

// Fixed-width hex rendering of a 64-bit id (16 lowercase hex digits); used
// for Mailboat's random message identifiers.
std::string HexId(uint64_t id);

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_STRUTIL_H_
