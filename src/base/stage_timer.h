// Lightweight pipeline-stage wall-clock counters for the netserv hot path.
//
// A request flows read -> parse -> execute -> fs -> commit-wait -> write;
// knowing which stage owns the per-request CPU is the whole profiling
// game, and gprof can't tell us (it samples the main thread only and never
// sees kernel time). StageScope instruments each stage with one
// steady_clock read on entry and exit (vDSO, ~20 ns) and attributes
// *self time*: a scope subtracts its children's elapsed time from its own,
// so `execute` excludes the fs work nested inside it and `fs` excludes the
// commit-wait nested inside it.
//
// The counters measure wall time, not CPU time: for the CPU-bound stages
// (read/parse/write and fs's syscall bodies) the two coincide, while
// commit-wait is dominated by blocking on the group-commit barrier — which
// is exactly what a throughput investigation wants separated out.
//
// Disabled (single relaxed load per scope) until a sink is installed, so
// production paths pay nothing. Install is not synchronized against
// concurrent scopes: install the sink before the server starts serving and
// uninstall after it stops.
#ifndef PERENNIAL_SRC_BASE_STAGE_TIMER_H_
#define PERENNIAL_SRC_BASE_STAGE_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace perennial::stage {

enum Stage : int {
  kRead = 0,    // socket recv + buffer management
  kParse,       // line carve out of the receive buffer
  kExecute,     // session state machine (minus nested fs work)
  kFs,          // filesystem syscalls (minus nested commit-wait)
  kCommitWait,  // blocked on a durability barrier (group commit or fsync)
  kWrite,       // response cork + socket send
  kNumStages,
};

inline const char* StageName(int s) {
  static constexpr const char* kNames[kNumStages] = {"read",       "parse", "execute",
                                                     "fs",         "commit_wait",
                                                     "write"};
  return (s >= 0 && s < kNumStages) ? kNames[s] : "?";
}

struct StageTotals {
  std::atomic<uint64_t> ns[kNumStages] = {};
  std::atomic<uint64_t> calls[kNumStages] = {};

  void Reset() {
    for (int i = 0; i < kNumStages; ++i) {
      ns[i].store(0, std::memory_order_relaxed);
      calls[i].store(0, std::memory_order_relaxed);
    }
  }
};

namespace detail {

inline std::atomic<StageTotals*>& SinkSlot() {
  static std::atomic<StageTotals*> sink{nullptr};
  return sink;
}

inline uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace detail

// Install a totals sink (nullptr to disable). The caller owns the sink and
// must keep it alive until after Install(nullptr) + all scopes have exited.
inline void Install(StageTotals* totals) {
  detail::SinkSlot().store(totals, std::memory_order_release);
}

class StageScope {
 public:
  explicit StageScope(Stage s) : stage_(s) {
    totals_ = detail::SinkSlot().load(std::memory_order_acquire);
    if (totals_ == nullptr) {
      return;
    }
    parent_ = tls_current_;
    tls_current_ = this;
    child_ns_ = 0;
    start_ns_ = detail::NowNs();
  }

  ~StageScope() {
    if (totals_ == nullptr) {
      return;
    }
    uint64_t elapsed = detail::NowNs() - start_ns_;
    uint64_t self = elapsed >= child_ns_ ? elapsed - child_ns_ : 0;
    totals_->ns[stage_].fetch_add(self, std::memory_order_relaxed);
    totals_->calls[stage_].fetch_add(1, std::memory_order_relaxed);
    tls_current_ = parent_;
    if (parent_ != nullptr) {
      parent_->child_ns_ += elapsed;
    }
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  // Scopes nest strictly (RAII on one thread), giving each thread a chain
  // for self-time attribution.
  static inline thread_local StageScope* tls_current_ = nullptr;

  Stage stage_;
  StageTotals* totals_;
  StageScope* parent_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t child_ns_ = 0;
};

}  // namespace perennial::stage

#endif  // PERENNIAL_SRC_BASE_STAGE_TIMER_H_
