// Incremental 128-bit FNV-1a hashing.
//
// Used by the refinement checker to fingerprint completed histories so that
// executions with identical observable behavior are checked against the
// spec only once per run (explorer.h). 128 bits keep the collision
// probability negligible even for runs with millions of distinct histories;
// a collision could at worst suppress one redundant spec check, so the
// fingerprint width is chosen to make that event practically impossible.
#ifndef PERENNIAL_SRC_BASE_HASH_H_
#define PERENNIAL_SRC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <tuple>

namespace perennial {

// A 128-bit digest, ordered so it can key std::map.
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return std::tie(a.hi, a.lo) < std::tie(b.hi, b.lo);
  }
};

// Streaming FNV-1a over a 128-bit state. Mix* calls are order-sensitive;
// strings are length-prefixed so adjacent fields cannot alias
// ("ab","c" vs "a","bc").
class Fnv128 {
 public:
  Fnv128();

  void MixBytes(const void* data, std::size_t n);
  void MixU64(uint64_t v);
  void MixString(std::string_view s);

  Hash128 digest() const;

 private:
  unsigned __int128 state_;
};

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_HASH_H_
