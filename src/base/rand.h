// Deterministic pseudo-random number generation.
//
// Everything in the checker must be replayable from a seed, so all random
// decisions (schedule exploration, workload generation, Mailboat's random
// message IDs in simulation) flow through Rng instances seeded explicitly.
#ifndef PERENNIAL_SRC_BASE_RAND_H_
#define PERENNIAL_SRC_BASE_RAND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perennial {

// SplitMix64: used to expand a single seed into stream state.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t Next();

  // Uniform over [0, bound) via Lemire's method; bound must be > 0.
  uint64_t Below(uint64_t bound);

  // Uniform over [lo, hi] inclusive; requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);

  // Bernoulli(p) with p in [0,1].
  bool Chance(double p);

  // Shuffles v in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Forks an independent stream (for per-thread generators).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace perennial

#endif  // PERENNIAL_SRC_BASE_RAND_H_
