#include "src/base/table.h"

#include <algorithm>
#include <cstdio>

namespace perennial {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::string padded(widths[i], ' ');
      if (i == 0) {  // left-align first column
        std::copy(cell.begin(), cell.end(), padded.begin());
      } else {  // right-align the rest
        std::copy(cell.begin(), cell.end(), padded.begin() + static_cast<long>(widths[i] - cell.size()));
      }
      line += padded;
      if (i + 1 < widths.size()) {
        line += "  ";
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    return line;
  };

  auto rule = [&] {
    size_t total = 0;
    for (size_t w : widths) {
      total += w;
    }
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    return std::string(total, '-');
  };

  std::string out = render_cells(header_);
  out += '\n';
  out += rule();
  out += '\n';
  for (const Row& row : rows_) {
    if (row.rule_before) {
      out += rule();
      out += '\n';
    }
    out += render_cells(row.cells);
    out += '\n';
  }
  return out;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FixedDigits(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace perennial
