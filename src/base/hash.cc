#include "src/base/hash.h"

namespace perennial {

namespace {

// FNV-1a 128-bit parameters (offset basis 0x6c62272e07bb014262b821756295c58d,
// prime 2^88 + 2^8 + 0x3b).
constexpr unsigned __int128 FnvOffsetBasis() {
  return (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) | 0x62b821756295c58dULL;
}

constexpr unsigned __int128 FnvPrime() {
  return (static_cast<unsigned __int128>(1) << 88) | 0x13bULL;
}

}  // namespace

Fnv128::Fnv128() : state_(FnvOffsetBasis()) {}

void Fnv128::MixBytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state_ ^= p[i];
    state_ *= FnvPrime();
  }
}

void Fnv128::MixU64(uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  MixBytes(bytes, sizeof(bytes));
}

void Fnv128::MixString(std::string_view s) {
  MixU64(s.size());
  MixBytes(s.data(), s.size());
}

Hash128 Fnv128::digest() const {
  return Hash128{static_cast<uint64_t>(state_ >> 64), static_cast<uint64_t>(state_)};
}

}  // namespace perennial
