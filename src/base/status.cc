#include "src/base/status.h"

namespace perennial {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailed:
      return "failed";
    case StatusCode::kInvalid:
      return "invalid";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kNoSpace:
      return "no-space";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace perennial
