#include "src/base/rand.h"

#include "src/base/panic.h"

namespace perennial {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  PCC_ENSURE(bound > 0, "Rng::Below(0)");
  // Lemire's nearly-divisionless method, with rejection to remove bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  PCC_ENSURE(lo <= hi, "Rng::Range: lo > hi");
  return lo + Below(hi - lo + 1);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  // 53-bit uniform double in [0,1).
  double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  return u < p;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace perennial
