#include "src/disk/posix_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/base/panic.h"
#include "src/base/rand.h"

namespace perennial::disk {

namespace {

Status ErrnoStatus(const char* op, int err) {
  return Status::Failed(std::string(op) + ": " + std::strerror(err));
}

int64_t RawPwrite(int fd, const void* buf, uint64_t n, int64_t off) {
  return ::pwrite(fd, buf, n, static_cast<off_t>(off));
}

int64_t RawPread(int fd, void* buf, uint64_t n, int64_t off) {
  return ::pread(fd, buf, n, static_cast<off_t>(off));
}

// EINTR-retry for -1/errno syscalls (open/fsync); partial-transfer retry for
// pread/pwrite lives in PreadAll/PwriteAll.
template <typename Fn>
int RetryEintr(Fn&& fn) {
  int rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace

Status PosixDisk::PwriteAll(int fd, const uint8_t* buf, uint64_t n, int64_t off,
                            const PwriteFn& pw) {
  uint64_t done = 0;
  while (done < n) {
    int64_t w = pw(fd, buf + done, n - done, off + static_cast<int64_t>(done));
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pwrite", errno);
    }
    if (w == 0) {
      return Status::Failed("pwrite: wrote 0 bytes");
    }
    done += static_cast<uint64_t>(w);
  }
  return Status::Ok();
}

Status PosixDisk::PreadAll(int fd, uint8_t* buf, uint64_t n, int64_t off, const PreadFn& pr) {
  uint64_t done = 0;
  while (done < n) {
    int64_t r = pr(fd, buf + done, n - done, off + static_cast<int64_t>(done));
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread", errno);
    }
    if (r == 0) {
      return Status::Failed("pread: unexpected EOF");
    }
    done += static_cast<uint64_t>(r);
  }
  return Status::Ok();
}

PosixDisk::PosixDisk(int fd, uint64_t num_blocks, Options options)
    : fd_(fd), num_blocks_(num_blocks), options_(std::move(options)) {}

PosixDisk::~PosixDisk() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<PosixDisk>> PosixDisk::Open(const std::string& path, uint64_t num_blocks,
                                                   Block initial, Options options, bool format) {
  PCC_ENSURE(options.sector_bytes >= 16, "PosixDisk: sector too small");
  PCC_ENSURE(initial.size() + 2 <= options.sector_bytes,
             "PosixDisk: initial block does not fit a sector");
  int flags = O_RDWR | O_CLOEXEC | (format ? O_CREAT : 0);
  int fd = RetryEintr([&] { return ::open(path.c_str(), flags, 0644); });
  if (fd < 0) {
    return ErrnoStatus("open", errno);
  }
  std::unique_ptr<PosixDisk> d(new PosixDisk(fd, num_blocks, std::move(options)));
  if (format) {
    if (::ftruncate(fd, static_cast<off_t>(num_blocks * d->options_.sector_bytes)) != 0) {
      return ErrnoStatus("ftruncate", errno);
    }
    for (uint64_t a = 0; a < num_blocks; ++a) {
      Status s = d->WriteSector(a, initial);
      if (!s.ok()) {
        return s;
      }
    }
    if (RetryEintr([&] { return ::fsync(fd); }) != 0) {
      return ErrnoStatus("fsync", errno);
    }
  } else {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      return ErrnoStatus("fstat", errno);
    }
    if (static_cast<uint64_t>(st.st_size) != num_blocks * d->options_.sector_bytes) {
      return Status::Invalid("PosixDisk: backing file has wrong size");
    }
  }
  return d;
}

Result<Block> PosixDisk::ReadSector(uint64_t a) const {
  std::vector<uint8_t> sector(options_.sector_bytes);
  Status s = PreadAll(fd_, sector.data(), sector.size(),
                      static_cast<int64_t>(a * options_.sector_bytes), RawPread);
  if (!s.ok()) {
    return s;
  }
  const uint64_t len = static_cast<uint64_t>(sector[0]) | (static_cast<uint64_t>(sector[1]) << 8);
  if (len + 2 > options_.sector_bytes) {
    return Status::Failed("PosixDisk: corrupt sector length");
  }
  return Block(sector.begin() + 2, sector.begin() + 2 + static_cast<int64_t>(len));
}

Status PosixDisk::WriteSector(uint64_t a, const Block& value) {
  std::vector<uint8_t> sector(options_.sector_bytes, 0);
  sector[0] = static_cast<uint8_t>(value.size() & 0xFF);
  sector[1] = static_cast<uint8_t>((value.size() >> 8) & 0xFF);
  std::copy(value.begin(), value.end(), sector.begin() + 2);
  return PwriteAll(fd_, sector.data(), sector.size(),
                   static_cast<int64_t>(a * options_.sector_bytes), RawPwrite);
}

proc::Task<Result<Block>> PosixDisk::Read(uint64_t a) {
  if (a >= num_blocks_) {
    co_return Status::Invalid("read out of range");
  }
  if (options_.writeback) {
    auto it = pending_.find(a);
    if (it != pending_.end()) {
      co_return it->second;  // read-your-writes through the buffer
    }
  }
  co_return ReadSector(a);
}

proc::Task<Status> PosixDisk::Write(uint64_t a, Block value) {
  if (a >= num_blocks_) {
    co_return Status::Invalid("write out of range");
  }
  if (value.size() + 2 > options_.sector_bytes) {
    co_return Status::Invalid("block does not fit a sector");
  }
  if (options_.writeback) {
    pending_[a] = std::move(value);
    co_return Status::Ok();
  }
  Cross("write.pwrite");
  co_return WriteSector(a, value);
}

proc::Task<Status> PosixDisk::Barrier() {
  if (options_.writeback && !pending_.empty()) {
    // Flush pending sectors in a seeded shuffled order: a kill between
    // these pwrites persists an arbitrary subset, the behavior a volatile
    // disk cache exhibits on power loss.
    std::vector<uint64_t> order;
    order.reserve(pending_.size());
    for (const auto& [a, v] : pending_) {
      order.push_back(a);
    }
    uint64_t st = options_.flush_shuffle_seed ^ (++barriers_done_ * 0x9E3779B97F4A7C15ull);
    Rng rng(SplitMix64(st));
    rng.Shuffle(order);
    for (uint64_t a : order) {
      Cross("barrier.pwrite");
      Status s = WriteSector(a, pending_[a]);
      if (!s.ok()) {
        co_return s;
      }
    }
  }
  Cross("barrier.fsync");
  if (RetryEintr([&] { return ::fsync(fd_); }) != 0) {
    Status s = ErrnoStatus("fsync", errno);
    co_return s;
  }
  // Only a successful fsync empties the buffer: after a failed barrier the
  // writes are still not durable and the caller must not believe otherwise.
  pending_.clear();
  Cross("barrier.done");
  co_return Status::Ok();
}

const Block& PosixDisk::PeekBlock(uint64_t a) const {
  PCC_ENSURE(a < num_blocks_, "PeekBlock out of range");
  if (options_.writeback) {
    auto it = pending_.find(a);
    if (it != pending_.end()) {
      return it->second;
    }
  }
  Result<Block> r = ReadSector(a);
  PCC_ENSURE(r.ok(), "PeekBlock: " + r.status().ToString());
  peek_scratch_ = std::move(r).value();
  return peek_scratch_;
}

void PosixDisk::PokeBlock(uint64_t a, Block value) {
  PCC_ENSURE(a < num_blocks_, "PokeBlock out of range");
  PCC_ENSURE(value.size() + 2 <= options_.sector_bytes, "PokeBlock: block too large");
  if (options_.writeback) {
    pending_.erase(a);
  }
  Status s = WriteSector(a, value);
  PCC_ENSURE(s.ok(), "PokeBlock: " + s.ToString());
}

Block PosixDisk::PeekDurable(uint64_t a) const {
  Result<Block> r = ReadSector(a);
  PCC_ENSURE(r.ok(), "PeekDurable: " + r.status().ToString());
  return std::move(r).value();
}

void PosixDisk::CloseFdForTesting() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

}  // namespace perennial::disk
