// Block-device models: the "single-disk" and "two-disk" semantics the
// paper's crash-safety pattern examples are verified against (§9.1,
// Table 3).
//
// A disk is durable: blocks survive crashes. Each block read/write is one
// atomic step (standard disk model; real disks write sectors atomically).
// The two-disk configuration supports fail-stop injection — after Fail(),
// reads return a failure and writes are ignored, which is exactly the
// behavior the replicated-disk library must tolerate (Figure 1).
#ifndef PERENNIAL_SRC_DISK_DISK_H_
#define PERENNIAL_SRC_DISK_DISK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/disk/blockdev.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::disk {

// Convenience: a block holding a little-endian uint64 (checker workloads).
Block BlockOfU64(uint64_t value);
uint64_t U64OfBlock(const Block& b);

class Disk : public BlockDev, public goose::CrashAware {
 public:
  // All blocks start as `initial` (conventionally zeroes).
  Disk(goose::World* world, uint64_t num_blocks, Block initial);

  uint64_t size() const override { return blocks_.size(); }

  // Reads block `a`. kFailed if the disk has failed; kInvalid out of range.
  proc::Task<Result<Block>> Read(uint64_t a) override;

  // Writes block `a`. A failed disk ignores the write and reports kFailed
  // so callers can tell an absorbed write from a durable one; out-of-range
  // is kInvalid.
  proc::Task<Status> Write(uint64_t a, Block value) override;

  // The base disk is synchronously durable (every write survives a crash),
  // so a barrier is a pure step. FaultyDisk overrides this with real
  // deferred-durability semantics.
  proc::Task<Status> Barrier() override;

  // Fail-stop injection (harness / explorer): from now on reads fail.
  // Failure flips invariant-visible state (crash invariants consult
  // failed()), so it conflicts with every other invariant-visible step.
  void Fail() {
    proc::RecordAccess(MetaRes(), /*write=*/true);
    proc::RecordAccess(proc::MixResource(proc::kResInvariant, 0), /*write=*/true);
    failed_ = true;
  }
  bool failed() const { return failed_; }

  // Durability: contents survive a crash; a failed disk stays failed.
  void OnCrash() override {}

  // Harness-only accessors.
  const Block& PeekBlock(uint64_t a) const override;
  void PokeBlock(uint64_t a, Block value) override;

 private:
  uint64_t MetaRes() const { return proc::MixResource(proc::kResDiskMeta, base_); }
  uint64_t SectorRes(uint64_t a) const { return proc::MixResource(proc::kResDiskSector, base_, a); }

  uint64_t base_;  // world-unique id distinguishing this disk's resources
  std::vector<Block> blocks_;
  bool failed_ = false;
};

// The two-disk configuration of Figure 1: physical disks d1 and d2 of equal
// size. At most one disk may be failed at a time in the modeled workloads
// (the library tolerates a single disk failure).
struct TwoDisks {
  TwoDisks(goose::World* world, uint64_t num_blocks, Block initial)
      : d1(world, num_blocks, initial), d2(world, num_blocks, initial) {}

  Disk d1;
  Disk d2;
};

}  // namespace perennial::disk

#endif  // PERENNIAL_SRC_DISK_DISK_H_
