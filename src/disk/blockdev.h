// BlockDev: the abstract block-device surface systems code is written
// against, so the same engine (TxnLog) runs unmodified over either
//
//  * the modeled disks (disk::Disk / fault::FaultyDisk) under the
//    refinement checker, with simulated crash semantics, or
//  * disk::PosixDisk, a real file accessed with pwrite/fsync, under the
//    cross-process crash harness (src/crashreal) that validates the
//    simulated semantics against an actual kernel.
//
// Semantics every implementation must provide:
//  * Blocks are sector-like: a successful Write of block `a` is atomic
//    with respect to crashes (the modeled header-sector assumption;
//    PosixDisk lays one block per 512-byte sector to inherit it from
//    real hardware).
//  * Write durability may be deferred: a crash can lose writes issued
//    since the last successful Barrier(). Barrier() returning Ok is the
//    durability point (FaultyDisk: torn images flushed; PosixDisk:
//    fsync, plus write-back flush in the harness's power-fail regime).
//  * Read returns the last value written (crash or not, reads are
//    always coherent with the program's own writes).
//
// PeekBlock/PokeBlock are harness-only escapes (invariants, formatting,
// tests); they are not modeled steps.
#ifndef PERENNIAL_SRC_DISK_BLOCKDEV_H_
#define PERENNIAL_SRC_DISK_BLOCKDEV_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/proc/task.h"

namespace perennial::disk {

// A disk block (see disk.h; sizes are small and may vary per write).
using Block = std::vector<uint8_t>;

class BlockDev {
 public:
  virtual ~BlockDev() = default;

  virtual uint64_t size() const = 0;

  // Reads block `a`. kFailed on a failed device; kInvalid out of range.
  virtual proc::Task<Result<Block>> Read(uint64_t a) = 0;

  // Writes block `a` (atomic per block; durability deferred to Barrier).
  virtual proc::Task<Status> Write(uint64_t a, Block value) = 0;

  // Write barrier: every prior successful Write is durable once this
  // returns Ok. A failed barrier (real fsync can fail) leaves the
  // durability of unflushed writes undefined and must never be treated
  // as success.
  virtual proc::Task<Status> Barrier() = 0;

  // Harness-only: current (volatile) contents of block `a`. The returned
  // reference is valid until the next operation on the device.
  virtual const Block& PeekBlock(uint64_t a) const = 0;

  // Harness-only: raw overwrite (formatting, seeding test states).
  virtual void PokeBlock(uint64_t a, Block value) = 0;
};

}  // namespace perennial::disk

#endif  // PERENNIAL_SRC_DISK_BLOCKDEV_H_
