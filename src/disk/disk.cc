#include "src/disk/disk.h"

namespace perennial::disk {

Block BlockOfU64(uint64_t value) {
  Block b(8);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<size_t>(i)] = static_cast<uint8_t>(value >> (8 * i));
  }
  return b;
}

uint64_t U64OfBlock(const Block& b) {
  uint64_t value = 0;
  for (size_t i = 0; i < b.size() && i < 8; ++i) {
    value |= static_cast<uint64_t>(b[i]) << (8 * i);
  }
  return value;
}

Disk::Disk(goose::World* world, uint64_t num_blocks, Block initial)
    : base_(world->NextResourceId()), blocks_(num_blocks, std::move(initial)) {
  world->Register(this);
}

proc::Task<Result<Block>> Disk::Read(uint64_t a) {
  co_await proc::Yield();
  proc::RecordAccess(MetaRes(), /*write=*/false);  // consults failed_
  proc::RecordAccess(SectorRes(a), /*write=*/false);
  if (failed_) {
    co_return Status::Failed("disk failed");
  }
  if (a >= blocks_.size()) {
    co_return Status::Invalid("read out of range");
  }
  co_return blocks_[a];
}

proc::Task<Status> Disk::Write(uint64_t a, Block value) {
  co_await proc::Yield();
  proc::RecordAccess(MetaRes(), /*write=*/false);  // consults failed_
  proc::RecordAccess(SectorRes(a), /*write=*/true);
  // Crash invariants read disk contents via PeekBlock, so any sector write
  // can change the truth of an invariant; the shared invariant resource
  // makes all such steps mutually dependent (never reordered by POR).
  proc::RecordAccess(proc::MixResource(proc::kResInvariant, 0), /*write=*/true);
  if (failed_) {
    // Fail-stop: the write is absorbed (the disk's contents are gone
    // anyway), but the caller is told — silently returning Ok here made it
    // impossible to distinguish an ignored write from a durable one.
    co_return Status::Failed("disk failed");
  }
  if (a >= blocks_.size()) {
    co_return Status::Invalid("write out of range");
  }
  blocks_[a] = std::move(value);
  co_return Status::Ok();
}

proc::Task<Status> Disk::Barrier() {
  co_await proc::Yield();
  proc::RecordPure();
  co_return Status::Ok();
}

const Block& Disk::PeekBlock(uint64_t a) const {
  PCC_ENSURE(a < blocks_.size(), "PeekBlock out of range");
  return blocks_[a];
}

void Disk::PokeBlock(uint64_t a, Block value) {
  PCC_ENSURE(a < blocks_.size(), "PokeBlock out of range");
  blocks_[a] = std::move(value);
}

}  // namespace perennial::disk
