// PosixDisk: the BlockDev interface over a regular file — real storage for
// the cross-process crash harness (src/crashreal).
//
// Layout: block `a` occupies the 512-byte (Options::sector_bytes) sector at
// offset a*sector_bytes, encoded as a 2-byte little-endian length prefix
// followed by the payload. Model blocks are small and variable-size (8-byte
// data blocks, 16-byte headers), so the prefix preserves exact read-back
// parity with the modeled Disk while one-block-per-sector inherits sector
// atomicity from the kernel/hardware — the same atomic-header-sector
// assumption TxnLog is verified against.
//
// Durability regimes:
//  * writeback = false ("kill" regime): every Write is pwrite'd immediately
//    and Barrier is an fsync. SIGKILL of the process loses nothing the
//    kernel already has — this regime validates recovery code against
//    arbitrary process death, not power loss.
//  * writeback = true ("powerfail" regime): Writes are buffered in process
//    memory (reads are coherent with the buffer) and only Barrier flushes
//    them — pwrite per pending sector in a seeded shuffled order, then
//    fsync. A SIGKILL discards the buffer, so un-barriered writes are lost
//    and a kill mid-barrier persists an arbitrary subset: the emulation of
//    a volatile disk write cache that the modeled FaultyDisk's deferred
//    durability corresponds to.
//
// Options::hook fires at named syscall boundaries ("write.pwrite",
// "barrier.pwrite", "barrier.fsync", "barrier.done"); the crash harness's
// killswitch counts these crossings and raises SIGKILL at a chosen one,
// which is how deterministic "mid-fsync" and "between write and barrier"
// kill points are realized.
//
// Not modeled: PosixDisk performs real blocking I/O and never yields to the
// simulated scheduler; it is meant for native (schedulerless) execution.
#ifndef PERENNIAL_SRC_DISK_POSIX_DISK_H_
#define PERENNIAL_SRC_DISK_POSIX_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/disk/blockdev.h"

namespace perennial::disk {

class PosixDisk : public BlockDev {
 public:
  struct Options {
    uint64_t sector_bytes = 512;
    // Power-fail regime: buffer writes in memory until Barrier (see above).
    bool writeback = false;
    // Seed for the order Barrier flushes pending sectors in (writeback).
    uint64_t flush_shuffle_seed = 0;
    // Crash-harness kill points; fired at syscall boundaries.
    std::function<void(const char* point)> hook;
  };

  // Opens (or with `format` creates/overwrites) the backing file. Format
  // writes `initial` to every block and fsyncs; without `format` the file
  // must already be exactly num_blocks * sector_bytes long.
  static Result<std::unique_ptr<PosixDisk>> Open(const std::string& path, uint64_t num_blocks,
                                                 Block initial, Options options, bool format);

  ~PosixDisk() override;
  PosixDisk(const PosixDisk&) = delete;
  PosixDisk& operator=(const PosixDisk&) = delete;

  uint64_t size() const override { return num_blocks_; }

  proc::Task<Result<Block>> Read(uint64_t a) override;
  proc::Task<Status> Write(uint64_t a, Block value) override;
  proc::Task<Status> Barrier() override;

  const Block& PeekBlock(uint64_t a) const override;
  void PokeBlock(uint64_t a, Block value) override;

  // Harness-only: the image on the backing file right now, bypassing the
  // write-back buffer — what a power failure at this instant would leave.
  Block PeekDurable(uint64_t a) const;

  bool HasPending() const { return !pending_.empty(); }

  // Closes the backing fd out from under the device so the next fsync (and
  // pwrite) fails — the failed-Barrier-surfaces-Status test hook.
  void CloseFdForTesting();

  // Full-write loops with EINTR/short-write handling, parameterized over
  // the raw syscall so unit tests can inject partial progress and EINTR.
  using PwriteFn = std::function<int64_t(int fd, const void* buf, uint64_t n, int64_t off)>;
  using PreadFn = std::function<int64_t(int fd, void* buf, uint64_t n, int64_t off)>;
  static Status PwriteAll(int fd, const uint8_t* buf, uint64_t n, int64_t off,
                          const PwriteFn& pw);
  static Status PreadAll(int fd, uint8_t* buf, uint64_t n, int64_t off, const PreadFn& pr);

 private:
  PosixDisk(int fd, uint64_t num_blocks, Options options);

  void Cross(const char* point) const {
    if (options_.hook) {
      options_.hook(point);
    }
  }
  // Reads block `a` from the backing file (no write-back consultation).
  Result<Block> ReadSector(uint64_t a) const;
  Status WriteSector(uint64_t a, const Block& value);

  int fd_;
  uint64_t num_blocks_;
  Options options_;
  uint64_t barriers_done_ = 0;
  // Write-back buffer: block -> value not yet flushed to the file.
  std::map<uint64_t, Block> pending_;
  mutable Block peek_scratch_;
};

}  // namespace perennial::disk

#endif  // PERENNIAL_SRC_DISK_POSIX_DISK_H_
