// The Goose heap: pointers, slices, and the racy-access-is-UB discipline.
//
// Per §6.1 of the paper, Goose makes racy access to shared data undefined
// behavior: a store is modeled as *two* atomic steps (write-start and
// write-end), and any operation on the same object that interleaves with an
// in-flight write raises UbViolation. Refinement holds only for programs
// the checker never drives into UB — which is how proofs "exploit undefined
// behavior" (§8.3): the spec imposes no obligation on racy clients.
//
// All handles carry the creation generation; crossing a crash invalidates
// them (§5.2). Harness-only Peek/Poke accessors bypass the modeled
// semantics for building initial states and checking invariants — they must
// never appear in modeled procedure bodies.
#ifndef PERENNIAL_SRC_GOOSE_HEAP_H_
#define PERENNIAL_SRC_GOOSE_HEAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::goose {

// A typed pointer into the Goose heap. Trivially copyable; the pointee is
// owned by the heap.
template <typename T>
struct Ptr {
  uint64_t id = UINT64_MAX;
  uint64_t gen = UINT64_MAX;

  bool null() const { return id == UINT64_MAX; }
  friend bool operator==(const Ptr&, const Ptr&) = default;
};

// A Go map handle.
template <typename K, typename V>
struct GoMap {
  uint64_t id = UINT64_MAX;
  uint64_t gen = UINT64_MAX;

  bool null() const { return id == UINT64_MAX; }
  friend bool operator==(const GoMap&, const GoMap&) = default;
};

// A Go slice handle: a view (offset, length) into a heap array.
template <typename T>
struct Slice {
  uint64_t id = UINT64_MAX;
  uint64_t off = 0;
  uint64_t len = 0;
  uint64_t gen = UINT64_MAX;

  bool null() const { return id == UINT64_MAX; }
  uint64_t size() const { return len; }
  friend bool operator==(const Slice&, const Slice&) = default;
};

class Heap : public CrashAware {
 public:
  explicit Heap(World* world)
      : world_(world), alloc_res_(proc::MixResource(proc::kResHeapAlloc, world->NextResourceId())) {
    world_->Register(this);
  }

  // --- Pointers ---

  template <typename T>
  Ptr<T> New(T value) {
    proc::RecordAccess(alloc_res_, /*write=*/true);
    auto cell = std::make_unique<Cell<T>>();
    cell->value = std::move(value);
    cells_.push_back(std::move(cell));
    return Ptr<T>{cells_.size() - 1, world_->generation()};
  }

  // *p — one atomic step; UB if a write to p is in flight.
  template <typename T>
  proc::Task<T> Load(Ptr<T> p) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(p.id), /*write=*/false);
    Cell<T>& cell = Resolve<T>(p, "Load");
    if (cell.write_active) {
      RaiseUb("Goose race: load overlaps an in-flight store");
    }
    co_return cell.value;
  }

  // *p = v — two atomic steps (write-start, write-end); any concurrent
  // operation on p between them is a race.
  template <typename T>
  proc::Task<void> Store(Ptr<T> p, T value) {
    co_await proc::Yield();
    {
      proc::RecordAccess(CellRes(p.id), /*write=*/true);
      Cell<T>& cell = Resolve<T>(p, "Store");
      if (cell.write_active) {
        RaiseUb("Goose race: two stores overlap");
      }
      cell.write_active = true;
    }
    co_await proc::Yield();
    {
      proc::RecordAccess(CellRes(p.id), /*write=*/true);
      Cell<T>& cell = Resolve<T>(p, "Store");
      cell.value = std::move(value);
      cell.write_active = false;
    }
  }

  // --- Slices ---

  template <typename T>
  Slice<T> NewSlice(uint64_t count, T fill = T{}) {
    proc::RecordAccess(alloc_res_, /*write=*/true);
    auto arr = std::make_unique<Array<T>>();
    arr->data.assign(count, fill);
    cells_.push_back(std::move(arr));
    return Slice<T>{cells_.size() - 1, 0, count, world_->generation()};
  }

  template <typename T>
  Slice<T> SliceFromVector(std::vector<T> values) {
    proc::RecordAccess(alloc_res_, /*write=*/true);
    auto arr = std::make_unique<Array<T>>();
    uint64_t count = values.size();
    arr->data = std::move(values);
    cells_.push_back(std::move(arr));
    return Slice<T>{cells_.size() - 1, 0, count, world_->generation()};
  }

  // s[i] — one atomic step; races with in-flight writes to the same array.
  template <typename T>
  proc::Task<T> SliceGet(Slice<T> s, uint64_t i) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(s.id), /*write=*/false);
    Array<T>& arr = ResolveArray<T>(s, "SliceGet");
    if (arr.write_active) {
      RaiseUb("Goose race: slice read overlaps an in-flight write");
    }
    CheckIndex(s, i, "SliceGet");
    co_return arr.data[s.off + i];
  }

  // s[i] = v — two atomic steps, like Store.
  template <typename T>
  proc::Task<void> SliceSet(Slice<T> s, uint64_t i, T value) {
    co_await proc::Yield();
    {
      proc::RecordAccess(CellRes(s.id), /*write=*/true);
      Array<T>& arr = ResolveArray<T>(s, "SliceSet");
      if (arr.write_active) {
        RaiseUb("Goose race: two slice writes overlap");
      }
      CheckIndex(s, i, "SliceSet");
      arr.write_active = true;
    }
    co_await proc::Yield();
    {
      proc::RecordAccess(CellRes(s.id), /*write=*/true);
      Array<T>& arr = ResolveArray<T>(s, "SliceSet");
      arr.data[s.off + i] = std::move(value);
      arr.write_active = false;
    }
  }

  // append(s, v) — modeled as copy-on-append into a fresh array (always
  // reallocates, a sound simplification of Go's capacity rule: no aliasing
  // surprises are possible). Two steps: the copy reads the source array.
  template <typename T>
  proc::Task<Slice<T>> SliceAppend(Slice<T> s, T value) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(s.id), /*write=*/false);
    std::vector<T> copy;
    {
      Array<T>& arr = ResolveArray<T>(s, "SliceAppend");
      if (arr.write_active) {
        RaiseUb("Goose race: append overlaps an in-flight write");
      }
      copy.assign(arr.data.begin() + static_cast<long>(s.off),
                  arr.data.begin() + static_cast<long>(s.off + s.len));
    }
    copy.push_back(std::move(value));
    co_return SliceFromVector(std::move(copy));
  }

  // copy(dst, s[lo:hi]) as used for chunked I/O: reads a whole range in one
  // atomic step (Go's copy builtin is one racey region operation).
  template <typename T>
  proc::Task<std::vector<T>> SliceCopyOut(Slice<T> s, uint64_t lo, uint64_t hi) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(s.id), /*write=*/false);
    Array<T>& arr = ResolveArray<T>(s, "SliceCopyOut");
    if (arr.write_active) {
      RaiseUb("Goose race: slice copy overlaps an in-flight write");
    }
    if (lo > hi || hi > s.len) {
      RaiseUb("SliceCopyOut: bounds");
    }
    co_return std::vector<T>(arr.data.begin() + static_cast<long>(s.off + lo),
                             arr.data.begin() + static_cast<long>(s.off + hi));
  }

  // s[lo:hi] — pure handle arithmetic, no scheduling point (Go subslicing
  // does not touch the array).
  template <typename T>
  Slice<T> SubSlice(Slice<T> s, uint64_t lo, uint64_t hi) const {
    PCC_ENSURE(lo <= hi && hi <= s.len, "SubSlice: bounds");
    return Slice<T>{s.id, s.off + lo, hi - lo, s.gen};
  }

  // --- Maps ---
  //
  // Go map operations are modeled as atomic, with §6.1's iterator rule: a
  // mutation while any iteration is in progress is undefined behavior
  // (iterator invalidation), and iteration visits entries one per step.

  template <typename K, typename V>
  GoMap<K, V> NewMap() {
    proc::RecordAccess(alloc_res_, /*write=*/true);
    cells_.push_back(std::make_unique<MapCell<K, V>>());
    return GoMap<K, V>{cells_.size() - 1, world_->generation()};
  }

  template <typename K, typename V>
  proc::Task<void> MapInsert(GoMap<K, V> m, K key, V value) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(m.id), /*write=*/true);
    MapCell<K, V>& cell = ResolveMap<K, V>(m, "MapInsert");
    if (cell.active_iterations > 0) {
      RaiseUb("Goose race: map insert during iteration");
    }
    cell.data[std::move(key)] = std::move(value);
  }

  template <typename K, typename V>
  proc::Task<std::optional<V>> MapLookup(GoMap<K, V> m, K key) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(m.id), /*write=*/false);
    MapCell<K, V>& cell = ResolveMap<K, V>(m, "MapLookup");
    auto it = cell.data.find(key);
    if (it == cell.data.end()) {
      co_return std::nullopt;
    }
    co_return it->second;
  }

  template <typename K, typename V>
  proc::Task<void> MapDelete(GoMap<K, V> m, K key) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(m.id), /*write=*/true);
    MapCell<K, V>& cell = ResolveMap<K, V>(m, "MapDelete");
    if (cell.active_iterations > 0) {
      RaiseUb("Goose race: map delete during iteration");
    }
    cell.data.erase(key);
  }

  template <typename K, typename V>
  proc::Task<uint64_t> MapLen(GoMap<K, V> m) {
    co_await proc::Yield();
    proc::RecordAccess(CellRes(m.id), /*write=*/false);
    co_return ResolveMap<K, V>(m, "MapLen").data.size();
  }

  // range over the map: one scheduling point per entry; `visit` is host
  // code (it may itself co_await modeled operations).
  template <typename K, typename V>
  proc::Task<void> MapForEach(GoMap<K, V> m,
                              std::function<proc::Task<void>(const K&, const V&)> visit) {
    co_await proc::Yield();
    // Iteration steps record reads: they conflict with concurrent mutations
    // (the §6.1 iterator-invalidation race stays explored) but two
    // iterations commute.
    proc::RecordAccess(CellRes(m.id), /*write=*/false);
    std::vector<K> keys;
    {
      MapCell<K, V>& cell = ResolveMap<K, V>(m, "MapForEach");
      ++cell.active_iterations;
      keys.reserve(cell.data.size());
      for (const auto& [k, v] : cell.data) {
        keys.push_back(k);
      }
    }
    for (const K& key : keys) {
      co_await proc::Yield();
      proc::RecordAccess(CellRes(m.id), /*write=*/false);
      MapCell<K, V>& cell = ResolveMap<K, V>(m, "MapForEach");
      auto it = cell.data.find(key);
      PCC_ENSURE(it != cell.data.end(), "MapForEach: entry vanished during legal iteration");
      co_await visit(it->first, it->second);
    }
    {
      MapCell<K, V>& cell = ResolveMap<K, V>(m, "MapForEach");
      --cell.active_iterations;
    }
  }

  // --- Harness-only accessors (no yields, no race checks) ---

  template <typename T>
  const T& Peek(Ptr<T> p) {
    return Resolve<T>(p, "Peek").value;
  }
  template <typename T>
  void Poke(Ptr<T> p, T value) {
    Resolve<T>(p, "Poke").value = std::move(value);
  }
  template <typename T>
  std::vector<T> PeekSlice(Slice<T> s) {
    Array<T>& arr = ResolveArray<T>(s, "PeekSlice");
    return std::vector<T>(arr.data.begin() + static_cast<long>(s.off),
                          arr.data.begin() + static_cast<long>(s.off + s.len));
  }

  size_t cell_count() const { return cells_.size(); }

  // Crash: all memory contents are lost (§6.2 crash model).
  void OnCrash() override { cells_.clear(); }

 private:
  struct CellBase {
    bool write_active = false;
    virtual ~CellBase() = default;
  };
  template <typename T>
  struct Cell : CellBase {
    T value;
  };
  template <typename T>
  struct Array : CellBase {
    std::vector<T> data;
  };
  template <typename K, typename V>
  struct MapCell : CellBase {
    std::map<K, V> data;
    int active_iterations = 0;
  };

  template <typename T>
  Cell<T>& Resolve(Ptr<T> p, const char* op) {
    if (p.null()) {
      RaiseUb(std::string(op) + ": nil pointer dereference");
    }
    if (p.gen != world_->generation()) {
      RaiseUb(std::string(op) + ": pointer from a previous crash generation");
    }
    PCC_ENSURE(p.id < cells_.size(), "heap: pointer id out of range");
    auto* cell = dynamic_cast<Cell<T>*>(cells_[p.id].get());
    PCC_ENSURE(cell != nullptr, "heap: pointer type mismatch");
    return *cell;
  }

  template <typename T>
  Array<T>& ResolveArray(Slice<T> s, const char* op) {
    if (s.null()) {
      RaiseUb(std::string(op) + ": nil slice");
    }
    if (s.gen != world_->generation()) {
      RaiseUb(std::string(op) + ": slice from a previous crash generation");
    }
    PCC_ENSURE(s.id < cells_.size(), "heap: slice id out of range");
    auto* arr = dynamic_cast<Array<T>*>(cells_[s.id].get());
    PCC_ENSURE(arr != nullptr, "heap: slice type mismatch");
    PCC_ENSURE(s.off + s.len <= arr->data.size(), "heap: slice view out of range");
    return *arr;
  }

  template <typename K, typename V>
  MapCell<K, V>& ResolveMap(GoMap<K, V> m, const char* op) {
    if (m.null()) {
      RaiseUb(std::string(op) + ": nil map");
    }
    if (m.gen != world_->generation()) {
      RaiseUb(std::string(op) + ": map from a previous crash generation");
    }
    PCC_ENSURE(m.id < cells_.size(), "heap: map id out of range");
    auto* cell = dynamic_cast<MapCell<K, V>*>(cells_[m.id].get());
    PCC_ENSURE(cell != nullptr, "heap: map type mismatch");
    return *cell;
  }

  template <typename T>
  void CheckIndex(Slice<T> s, uint64_t i, const char* op) {
    if (i >= s.len) {
      RaiseUb(std::string(op) + ": index out of range");
    }
  }

  // Cell ids restart from 0 after OnCrash, so the footprint resource is
  // stamped with the crash generation to keep old and new cells distinct.
  uint64_t CellRes(uint64_t id) const {
    return proc::MixResource(proc::kResHeapCell, id, world_->generation());
  }

  World* world_;
  uint64_t alloc_res_;
  std::vector<std::unique_ptr<CellBase>> cells_;
};

}  // namespace perennial::goose

#endif  // PERENNIAL_SRC_GOOSE_HEAP_H_
