// The Goose "world": the machine a modeled program runs on.
//
// The world owns the crash generation number (§5.2 "versioned state"): every
// volatile handle (heap pointer, slice, map, mutex, file descriptor) is
// stamped with the generation it was created in, and using a handle from an
// older generation is undefined behavior — the runtime analogue of
// Perennial's rule that capabilities at an old version are invalid.
//
// Crash() bumps the generation, resets registered volatile components (the
// heap), and runs crash hooks on durable components (the file system drops
// open fds but keeps data; disks keep blocks). Thread death is the
// scheduler's job and is coordinated by the crash explorer in src/refine.
#ifndef PERENNIAL_SRC_GOOSE_WORLD_H_
#define PERENNIAL_SRC_GOOSE_WORLD_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace perennial::goose {

// A component whose state participates in crashes. Volatile components lose
// everything; durable components apply their crash semantics (e.g. fds lost,
// data kept).
class CrashAware {
 public:
  virtual ~CrashAware() = default;
  virtual void OnCrash() = 0;
};

class World {
 public:
  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  uint64_t generation() const { return generation_; }

  // Components register once at construction; the world does not own them.
  void Register(CrashAware* component) { components_.push_back(component); }

  // Models the machine crashing: generation bumps, then every registered
  // component applies its crash transition. The caller (crash explorer) is
  // responsible for having killed all threads first.
  void Crash() {
    ++generation_;
    for (CrashAware* c : components_) {
      c->OnCrash();
    }
  }

  uint64_t crash_count() const { return generation_; }

  // Allocates a world-unique id for DPOR access footprints (footprint.h).
  // Deterministic: factories construct primitives in a fixed order, so the
  // same object gets the same id on every replay of an execution prefix —
  // which is what lets the explorer compare footprints across executions.
  uint64_t NextResourceId() { return ++next_resource_id_; }

 private:
  uint64_t generation_ = 0;
  uint64_t next_resource_id_ = 0;
  std::vector<CrashAware*> components_;
};

}  // namespace perennial::goose

#endif  // PERENNIAL_SRC_GOOSE_WORLD_H_
