// Go's sync/atomic package for Goose programs — the paper's §6.1 notes
// Goose "could be extended to include them"; this is that extension.
//
// Each operation is a single atomic step (one scheduling point, then the
// whole effect), and — unlike plain heap cells — concurrent atomic access
// is NOT a race: that is the entire point of the package. CompareAndSwap
// enables lock-free algorithms, which the checker then verifies
// linearizable the same way it does lock-based ones (the capability Iris
// needs for lock-free proofs is what distinguishes Perennial from FTCSL,
// §2).
//
// Atomics are volatile: crossing a crash generation is UB, like all
// in-memory state.
#ifndef PERENNIAL_SRC_GOOSE_ATOMIC_H_
#define PERENNIAL_SRC_GOOSE_ATOMIC_H_

#include <atomic>
#include <cstdint>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::goose {

class AtomicU64 {
 public:
  AtomicU64(World* world, uint64_t initial)
      : world_(world),
        gen_(world->generation()),
        res_(proc::MixResource(proc::kResSync, world->NextResourceId())),
        value_(initial) {}
  AtomicU64(const AtomicU64&) = delete;
  AtomicU64& operator=(const AtomicU64&) = delete;

  proc::Task<uint64_t> Load() {
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/false);
    CheckGeneration("Load");
    co_return value_.load(std::memory_order_seq_cst);
  }

  proc::Task<void> Store(uint64_t value) {
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Store");
    value_.store(value, std::memory_order_seq_cst);
  }

  // Returns the NEW value, like Go's atomic.AddUint64.
  proc::Task<uint64_t> Add(uint64_t delta) {
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Add");
    co_return value_.fetch_add(delta, std::memory_order_seq_cst) + delta;
  }

  // Returns true iff the swap happened.
  proc::Task<bool> CompareAndSwap(uint64_t expected, uint64_t desired) {
    co_await proc::Yield();
    // Conservatively a write even when the swap fails: a failed CAS still
    // read the word, and the sleeping-alternative bookkeeping is cheaper
    // with one uniform classification.
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("CompareAndSwap");
    uint64_t e = expected;
    co_return value_.compare_exchange_strong(e, desired, std::memory_order_seq_cst);
  }

  uint64_t PeekForTesting() const { return value_.load(std::memory_order_relaxed); }

 private:
  void CheckGeneration(const char* op) {
    if (gen_ != world_->generation()) {
      RaiseUb(std::string("AtomicU64::") + op + ": from a previous crash generation");
    }
  }

  World* world_;
  uint64_t gen_;
  uint64_t res_;
  // std::atomic carries the native-mode semantics; in simulation the
  // single-step model already serializes accesses.
  std::atomic<uint64_t> value_;
};

}  // namespace perennial::goose

#endif  // PERENNIAL_SRC_GOOSE_ATOMIC_H_
