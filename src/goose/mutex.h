// Go sync.Mutex, modeled.
//
// In simulated mode the mutex integrates with the scheduler: Lock blocks the
// thread (it leaves the runnable set) until an Unlock wakes the waiters, and
// which waiter wins is a scheduling decision the checker explores. In native
// mode the mutex blocks the OS thread on a condition variable. It is NOT a
// plain std::mutex: Go's sync.Mutex (and therefore modeled code — e.g. a
// POP3 frontend that locks at PASS and unlocks at QUIT) permits Lock and
// Unlock to happen on different threads, which is undefined behavior for
// std::mutex but well-defined for the cv-guarded flag used here.
//
// Like all in-memory state, a mutex is stamped with its crash generation:
// locking a mutex created before a crash is undefined behavior — the memory
// it lived in no longer exists (§5.2). Recovery must allocate fresh locks.
//
// Modeled code must pair Lock/Unlock *explicitly* (as Go code does); no RAII
// guard is provided for modeled locks, because a crash must be able to strand
// a held lock without running cleanup.
#ifndef PERENNIAL_SRC_GOOSE_MUTEX_H_
#define PERENNIAL_SRC_GOOSE_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <vector>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::goose {

class Mutex {
 public:
  explicit Mutex(World* world)
      : world_(world),
        gen_(world->generation()),
        res_(proc::MixResource(proc::kResSync, world->NextResourceId())) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  proc::Task<void> Lock() {
    if (proc::CurrentScheduler() == nullptr) {
      std::unique_lock<std::mutex> lk(native_mu_);
      native_cv_.wait(lk, [this] { return !native_locked_; });
      native_locked_ = true;
      co_return;
    }
    co_await proc::Yield();
    // Every lock-word touch (acquire, blocked retry) is a footprint write:
    // two lock attempts never commute, and an attempt never commutes with
    // the unlock that would wake it.
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Lock");
    proc::Scheduler* sched = proc::CurrentScheduler();
    while (locked_) {
      waiters_.push_back(sched->current_tid());
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
      CheckGeneration("Lock");  // a crash cannot intervene (threads die), but stay defensive
    }
    locked_ = true;
  }

  proc::Task<void> Unlock() {
    if (proc::CurrentScheduler() == nullptr) {
      {
        std::scoped_lock<std::mutex> lk(native_mu_);
        if (!native_locked_) {
          RaiseUb("Mutex::Unlock of an unlocked mutex");
        }
        native_locked_ = false;
      }
      native_cv_.notify_one();
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Unlock");
    if (!locked_) {
      RaiseUb("Mutex::Unlock of an unlocked mutex");
    }
    locked_ = false;
    proc::Scheduler* sched = proc::CurrentScheduler();
    for (proc::Scheduler::Tid tid : waiters_) {
      sched->Unblock(tid);  // all waiters retry; the schedule decides the winner
    }
    waiters_.clear();
  }

  // Harness-only: observe lock state (e.g. in tests). Simulated-mode state
  // only; native-mode holders are tracked by native_locked_.
  bool HeldForTesting() const { return locked_; }

 private:
  void CheckGeneration(const char* op) {
    if (gen_ != world_->generation()) {
      RaiseUb(std::string("Mutex::") + op + ": mutex from a previous crash generation");
    }
  }

  World* world_;
  uint64_t gen_;
  uint64_t res_;
  bool locked_ = false;
  std::vector<proc::Scheduler::Tid> waiters_;
  std::mutex native_mu_;
  std::condition_variable native_cv_;
  bool native_locked_ = false;
};

}  // namespace perennial::goose

#endif  // PERENNIAL_SRC_GOOSE_MUTEX_H_
