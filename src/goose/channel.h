// Go channels for Goose programs.
//
// Chan<T> supports buffered and "rendezvous-ish" (capacity-1 semantics for
// capacity 0; see note) sends, blocking receives, and close-with-drain —
// the subset of Go channel behavior the example servers need:
//   Send(v)   — blocks while the buffer is full; UB on a closed channel.
//   Recv()    — blocks while empty; returns nullopt once closed AND drained.
//   TryRecv() — non-blocking variant.
//   Close()   — wakes everyone; further sends are UB (as in Go).
//
// Note on capacity 0: Go's unbuffered channels rendezvous (sender and
// receiver synchronize). This model treats capacity 0 as capacity 1, which
// is a sound weakening for the programs here (they never rely on the
// synchronization point); true rendezvous could be added with a handoff
// slot if a verified system ever needs it.
//
// Simulated mode integrates with the scheduler (blocked = not runnable);
// native mode uses a mutex + condition variable. Channels are volatile:
// crossing a crash generation is UB.
#ifndef PERENNIAL_SRC_GOOSE_CHANNEL_H_
#define PERENNIAL_SRC_GOOSE_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::goose {

template <typename T>
class Chan {
 public:
  Chan(World* world, size_t capacity)
      : world_(world),
        gen_(world->generation()),
        res_(proc::MixResource(proc::kResSync, world->NextResourceId())),
        capacity_(capacity == 0 ? 1 : capacity) {}
  Chan(const Chan&) = delete;
  Chan& operator=(const Chan&) = delete;

  proc::Task<void> Send(T value) {
    if (proc::CurrentScheduler() == nullptr) {
      std::unique_lock lock(native_mu_);
      native_cv_.wait(lock, [this] { return closed_ || buffer_.size() < capacity_; });
      PCC_ENSURE(!closed_, "Chan::Send on a closed channel");
      buffer_.push_back(std::move(value));
      native_cv_.notify_all();
      co_return;
    }
    co_await proc::Yield();
    // Channel operations all touch the shared buffer/closed word; like the
    // mutex, every attempt (including blocked retries) is a footprint write.
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Send");
    proc::Scheduler* sched = proc::CurrentScheduler();
    while (!closed_ && buffer_.size() >= capacity_) {
      waiters_.push_back(sched->current_tid());
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
      CheckGeneration("Send");
    }
    if (closed_) {
      RaiseUb("Chan::Send on a closed channel");
    }
    buffer_.push_back(std::move(value));
    WakeAll();
  }

  proc::Task<std::optional<T>> Recv() {
    if (proc::CurrentScheduler() == nullptr) {
      std::unique_lock lock(native_mu_);
      native_cv_.wait(lock, [this] { return closed_ || !buffer_.empty(); });
      if (buffer_.empty()) {
        co_return std::nullopt;  // closed and drained
      }
      T value = std::move(buffer_.front());
      buffer_.pop_front();
      native_cv_.notify_all();
      co_return value;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Recv");
    proc::Scheduler* sched = proc::CurrentScheduler();
    while (!closed_ && buffer_.empty()) {
      waiters_.push_back(sched->current_tid());
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
      CheckGeneration("Recv");
    }
    if (buffer_.empty()) {
      co_return std::nullopt;
    }
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    WakeAll();
    co_return value;
  }

  proc::Task<std::optional<T>> TryRecv() {
    if (proc::CurrentScheduler() == nullptr) {
      std::scoped_lock lock(native_mu_);
      if (buffer_.empty()) {
        co_return std::nullopt;
      }
      T value = std::move(buffer_.front());
      buffer_.pop_front();
      native_cv_.notify_all();
      co_return value;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("TryRecv");
    if (buffer_.empty()) {
      co_return std::nullopt;
    }
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    WakeAll();
    co_return value;
  }

  proc::Task<void> Close() {
    if (proc::CurrentScheduler() == nullptr) {
      std::scoped_lock lock(native_mu_);
      PCC_ENSURE(!closed_, "Chan::Close of an already-closed channel");
      closed_ = true;
      native_cv_.notify_all();
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Close");
    if (closed_) {
      RaiseUb("Chan::Close of an already-closed channel");
    }
    closed_ = true;
    WakeAll();
  }

  bool ClosedForTesting() const { return closed_; }
  size_t SizeForTesting() const { return buffer_.size(); }

 private:
  void CheckGeneration(const char* op) {
    if (gen_ != world_->generation()) {
      RaiseUb(std::string("Chan::") + op + ": channel from a previous crash generation");
    }
  }
  void WakeAll() {
    proc::Scheduler* sched = proc::CurrentScheduler();
    for (proc::Scheduler::Tid tid : waiters_) {
      sched->Unblock(tid);
    }
    waiters_.clear();
  }

  World* world_;
  uint64_t gen_;
  uint64_t res_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> buffer_;
  std::vector<proc::Scheduler::Tid> waiters_;
  std::mutex native_mu_;
  std::condition_variable native_cv_;
};

}  // namespace perennial::goose

#endif  // PERENNIAL_SRC_GOOSE_CHANNEL_H_
