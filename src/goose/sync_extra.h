// Additional Go sync primitives for Goose programs: RWMutex, WaitGroup,
// and Cond. Like goose::Mutex, each integrates with the simulated
// scheduler (blocking removes the thread from the runnable set; wakeups
// re-contend under checker-chosen schedules) and degrades to conventional
// native primitives when no scheduler is installed. All are volatile:
// using one across a crash generation is undefined behavior.
#ifndef PERENNIAL_SRC_GOOSE_SYNC_EXTRA_H_
#define PERENNIAL_SRC_GOOSE_SYNC_EXTRA_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/base/panic.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::goose {

// Go's sync.RWMutex: any number of readers, or one writer.
//
// Footprints: every operation is a write on the rwlock word. Two RLocks do
// commute semantically, but they both mutate readers_, and classifying them
// as reads would require proving the increment commutes with enabledness of
// every waiter — the uniform write classification is sound and the lost
// pruning is negligible for the systems here.
class RWMutex {
 public:
  explicit RWMutex(World* world)
      : world_(world),
        gen_(world->generation()),
        res_(proc::MixResource(proc::kResSync, world->NextResourceId())) {}
  RWMutex(const RWMutex&) = delete;
  RWMutex& operator=(const RWMutex&) = delete;

  proc::Task<void> RLock() {
    if (proc::CurrentScheduler() == nullptr) {
      native_mu_.lock_shared();
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("RLock");
    proc::Scheduler* sched = proc::CurrentScheduler();
    while (writer_) {
      waiters_.push_back(sched->current_tid());
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
      CheckGeneration("RLock");
    }
    ++readers_;
  }

  proc::Task<void> RUnlock() {
    if (proc::CurrentScheduler() == nullptr) {
      native_mu_.unlock_shared();
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("RUnlock");
    if (readers_ == 0) {
      RaiseUb("RWMutex::RUnlock without a read lock");
    }
    --readers_;
    if (readers_ == 0) {
      WakeAll();
    }
  }

  proc::Task<void> Lock() {
    if (proc::CurrentScheduler() == nullptr) {
      native_mu_.lock();
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Lock");
    proc::Scheduler* sched = proc::CurrentScheduler();
    while (writer_ || readers_ > 0) {
      waiters_.push_back(sched->current_tid());
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
      CheckGeneration("Lock");
    }
    writer_ = true;
  }

  proc::Task<void> Unlock() {
    if (proc::CurrentScheduler() == nullptr) {
      native_mu_.unlock();
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Unlock");
    if (!writer_) {
      RaiseUb("RWMutex::Unlock without the write lock");
    }
    writer_ = false;
    WakeAll();
  }

  int ReadersForTesting() const { return readers_; }
  bool WriterForTesting() const { return writer_; }

 private:
  void CheckGeneration(const char* op) {
    if (gen_ != world_->generation()) {
      RaiseUb(std::string("RWMutex::") + op + ": from a previous crash generation");
    }
  }
  void WakeAll() {
    proc::Scheduler* sched = proc::CurrentScheduler();
    for (proc::Scheduler::Tid tid : waiters_) {
      sched->Unblock(tid);
    }
    waiters_.clear();
  }

  World* world_;
  uint64_t gen_;
  uint64_t res_;
  int readers_ = 0;
  bool writer_ = false;
  std::vector<proc::Scheduler::Tid> waiters_;
  std::shared_mutex native_mu_;
};

// Go's sync.WaitGroup.
class WaitGroup {
 public:
  explicit WaitGroup(World* world)
      : world_(world),
        gen_(world->generation()),
        res_(proc::MixResource(proc::kResSync, world->NextResourceId())) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  // Add is host-atomic in native mode (called before spawning workers). In
  // simulation it runs inside whichever step is active, so it contributes the
  // counter word to that step's footprint.
  void Add(int delta) {
    proc::RecordAccess(res_, /*write=*/true);
    std::scoped_lock lock(native_mu_);
    count_ += delta;
    PCC_ENSURE(count_ >= 0, "WaitGroup: negative counter");
  }

  proc::Task<void> Done() {
    if (proc::CurrentScheduler() == nullptr) {
      std::scoped_lock lock(native_mu_);
      PCC_ENSURE(count_ > 0, "WaitGroup::Done without Add");
      if (--count_ == 0) {
        native_cv_.notify_all();
      }
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Done");
    if (count_ <= 0) {
      RaiseUb("WaitGroup::Done without a matching Add");
    }
    --count_;
    if (count_ == 0) {
      proc::Scheduler* sched = proc::CurrentScheduler();
      for (proc::Scheduler::Tid tid : waiters_) {
        sched->Unblock(tid);
      }
      waiters_.clear();
    }
  }

  proc::Task<void> Wait() {
    if (proc::CurrentScheduler() == nullptr) {
      std::unique_lock lock(native_mu_);
      native_cv_.wait(lock, [this] { return count_ == 0; });
      co_return;
    }
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Wait");
    proc::Scheduler* sched = proc::CurrentScheduler();
    while (count_ > 0) {
      waiters_.push_back(sched->current_tid());
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
      CheckGeneration("Wait");
    }
  }

  int CountForTesting() const { return count_; }

 private:
  void CheckGeneration(const char* op) {
    if (gen_ != world_->generation()) {
      RaiseUb(std::string("WaitGroup::") + op + ": from a previous crash generation");
    }
  }

  World* world_;
  uint64_t gen_;
  uint64_t res_;
  int count_ = 0;
  std::vector<proc::Scheduler::Tid> waiters_;
  std::mutex native_mu_;
  std::condition_variable native_cv_;
};

// Go's sync.Cond over a goose::Mutex. As in Go, waiters must re-check
// their condition in a loop: wakeups may be spurious (the simulated
// Signal wakes every waiter and lets the schedule pick who proceeds —
// a sound over-approximation of "wakes one arbitrary waiter").
class Cond {
 public:
  Cond(World* world, Mutex* mu)
      : world_(world),
        gen_(world->generation()),
        res_(proc::MixResource(proc::kResSync, world->NextResourceId())),
        mu_(mu) {}
  Cond(const Cond&) = delete;
  Cond& operator=(const Cond&) = delete;

  // Caller must hold mu; atomically releases it, blocks, and re-acquires.
  proc::Task<void> Wait() {
    PCC_ENSURE(proc::CurrentScheduler() != nullptr,
               "Cond is modeled-only (native code should use std primitives)");
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Wait");
    proc::Scheduler* sched = proc::CurrentScheduler();
    waiters_.push_back(sched->current_tid());
    co_await mu_->Unlock();
    // The unlock's step continues here and re-reads the waiter list, so the
    // cond word joins that step's footprint alongside the mutex word.
    proc::RecordAccess(res_, /*write=*/true);
    // If a Signal already arrived (between the unlock and here the list is
    // only cleared by Signal), skip blocking; otherwise block until woken.
    bool still_waiting = false;
    for (proc::Scheduler::Tid tid : waiters_) {
      still_waiting = still_waiting || tid == sched->current_tid();
    }
    if (still_waiting) {
      co_await proc::BlockCurrentThread();
      proc::RecordAccess(res_, /*write=*/true);
    }
    CheckGeneration("Wait");
    co_await mu_->Lock();
  }

  proc::Task<void> Signal() { return Broadcast(); }

  proc::Task<void> Broadcast() {
    PCC_ENSURE(proc::CurrentScheduler() != nullptr,
               "Cond is modeled-only (native code should use std primitives)");
    co_await proc::Yield();
    proc::RecordAccess(res_, /*write=*/true);
    CheckGeneration("Broadcast");
    proc::Scheduler* sched = proc::CurrentScheduler();
    for (proc::Scheduler::Tid tid : waiters_) {
      sched->Unblock(tid);
    }
    waiters_.clear();
  }

 private:
  void CheckGeneration(const char* op) {
    if (gen_ != world_->generation()) {
      RaiseUb(std::string("Cond::") + op + ": from a previous crash generation");
    }
  }

  World* world_;
  uint64_t gen_;
  uint64_t res_;
  Mutex* mu_;
  std::vector<proc::Scheduler::Tid> waiters_;
};

}  // namespace perennial::goose

#endif  // PERENNIAL_SRC_GOOSE_SYNC_EXTRA_H_
