#include "src/crashreal/trace.h"

#include <fstream>
#include <sstream>

namespace perennial::crashreal {

std::string FormatCrashTrace(const CrashTrace& trace) {
  std::ostringstream out;
  out << "pcc-crashreal v1\n";
  out << "system " << trace.system << "\n";
  out << "regime " << trace.regime << "\n";
  out << "seed " << trace.seed << "\n";
  out << "round " << trace.round << "\n";
  out << "kill_at " << trace.kill_at << "\n";
  out << "ops_per_round " << trace.ops_per_round << "\n";
  out << "num_addrs " << trace.num_addrs << "\n";
  out << "log_capacity " << trace.log_capacity << "\n";
  out << "num_users " << trace.num_users << "\n";
  out << "sync_on_deliver " << (trace.sync_on_deliver ? 1 : 0) << "\n";
  out << "fsync_dirs " << (trace.fsync_dirs ? 1 : 0) << "\n";
  for (const std::string& m : trace.mutations) {
    out << "mutate " << m << "\n";
  }
  out << "classification " << trace.classification << "\n";
  out << "detail " << trace.detail << "\n";
  return out.str();
}

Status ParseCrashTrace(const std::string& text, CrashTrace* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "pcc-crashreal v1") {
    return Status::Invalid("crashreal trace: bad header: " + line);
  }
  *out = CrashTrace{};
  out->mutations.clear();
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto rest = [&ls]() {
      std::string r;
      std::getline(ls, r);
      if (!r.empty() && r[0] == ' ') {
        r.erase(0, 1);
      }
      return r;
    };
    if (key == "system") {
      ls >> out->system;
    } else if (key == "regime") {
      ls >> out->regime;
    } else if (key == "seed") {
      ls >> out->seed;
    } else if (key == "round") {
      ls >> out->round;
    } else if (key == "kill_at") {
      ls >> out->kill_at;
    } else if (key == "ops_per_round") {
      ls >> out->ops_per_round;
    } else if (key == "num_addrs") {
      ls >> out->num_addrs;
    } else if (key == "log_capacity") {
      ls >> out->log_capacity;
    } else if (key == "num_users") {
      ls >> out->num_users;
    } else if (key == "sync_on_deliver") {
      int v = 1;
      ls >> v;
      out->sync_on_deliver = v != 0;
    } else if (key == "fsync_dirs") {
      int v = 1;
      ls >> v;
      out->fsync_dirs = v != 0;
    } else if (key == "mutate") {
      std::string m;
      ls >> m;
      out->mutations.push_back(m);
    } else if (key == "classification") {
      ls >> out->classification;
    } else if (key == "detail") {
      out->detail = rest();
    } else {
      return Status::Invalid("crashreal trace: unknown key '" + key + "'");
    }
    if (ls.fail() && key != "detail") {
      return Status::Invalid("crashreal trace: malformed line: " + line);
    }
  }
  if (out->system != "txnlog" && out->system != "mailboat") {
    return Status::Invalid("crashreal trace: bad system '" + out->system + "'");
  }
  if (out->regime != "kill" && out->regime != "powerfail") {
    return Status::Invalid("crashreal trace: bad regime '" + out->regime + "'");
  }
  return Status::Ok();
}

Status SaveCrashTrace(const std::string& path, const CrashTrace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Failed("cannot write " + path);
  }
  out << FormatCrashTrace(trace);
  out.close();
  if (!out) {
    return Status::Failed("write failed: " + path);
  }
  return Status::Ok();
}

Status LoadCrashTrace(const std::string& path, CrashTrace* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::Failed("cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCrashTrace(buf.str(), out);
}

}  // namespace perennial::crashreal
