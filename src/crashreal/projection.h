// Power-fail projection: given a SIGKILLed child's directory tree (which
// still holds *everything* the child wrote — the page cache survives
// process death) and the JournalFs journal it left behind, prune the tree
// down to what a real power cut at the kill instant could have preserved
// under the POSIX durability contract (DESIGN.md §13).
//
// The projection is deliberately the *weakest* legal state — the fewest
// entries and shortest files POSIX lets a power cut keep:
//
//  * A directory entry created (create/link) this round is durable only
//    once a later `dirsync <dir>` line covers it; otherwise it is pruned.
//  * A delete is applied immediately (no resurrection): GooseFs models
//    unlink metadata synchronously, and keeping the entry would test a
//    laxer contract than the model promises, not a stricter one.
//  * A file created this round is truncated to the length of its last
//    successful `sync` line — zero if it was never synced. Link propagates
//    the synced length from the source (spool) name, so an unsynced
//    deliver surfaces as a zero-length mailbox message.
//
// Pruning only ever *removes* effects of in-flight or not-yet-synced
// operations; a fully completed operation (all its lines present, ending
// in dirsync) is always kept intact. That makes every projected state one
// the atomic spec already brackets — any divergence the validator then
// reports is a genuine durability gap, not a projection artifact.
#ifndef PERENNIAL_SRC_CRASHREAL_PROJECTION_H_
#define PERENNIAL_SRC_CRASHREAL_PROJECTION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace perennial::crashreal {

// Durable listing of `dirs` under `root` before the round started: the
// projection keeps these entries unconditionally (they were durable when
// the child forked). Key: directory name, value: file names.
using DirListing = std::map<std::string, std::set<std::string>>;

// Reads the current (post-SIGKILL, pre-projection) listing from disk.
Result<DirListing> ListDirs(const std::string& root, const std::vector<std::string>& dirs);

// Applies the projection in place under `root`. `base` is the durable
// pre-round listing; `journal_path` the JournalFs output. Returns the
// projected listing (what survived).
Result<DirListing> ApplyPowerFailProjection(const std::string& root,
                                            const std::string& journal_path,
                                            const std::vector<std::string>& dirs,
                                            const DirListing& base);

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_PROJECTION_H_
