// JournalFs: a Filesys decorator recording durability-relevant effects, so
// the parent can project power-loss semantics onto a SIGKILLed child's
// directory tree (DESIGN.md §13).
//
// SIGKILL alone cannot lose state: everything the child wrote sits in the
// kernel page cache and survives process death. To emulate power loss the
// parent must *remove* what a real power cut would have removed — directory
// entries never covered by a directory fsync, and file data beyond the last
// file fsync. JournalFs supplies the evidence: an append-only journal file
// in the workdir (itself surviving SIGKILL via the page cache) with one
// line per effect:
//
//   create <dir> <name>          intent, written BEFORE the syscall
//   create-fail <dir> <name>     the create did not happen after all
//   link <sdir> <sname> <ddir> <dname>     intent
//   link-fail <sdir> <sname> <ddir> <dname>
//   delete <dir> <name>          intent
//   sync <dir> <name> <len>      fsync(file) returned success at length len
//   dirsync <dir>                fsync(directory fd) returned success
//
// Intents are written before their syscalls so they always precede the
// dirsync fired inside PosixFilesys (whose hook this decorator installs);
// the projection (projection.h) treats an intent whose entry is absent or
// never dirsynced as lost, which corresponds to killing the op slightly
// earlier — a state the spec already allows for in-flight operations.
//
// The decorator also feeds every op boundary and PosixFilesys hook point to
// the killswitch, providing the kill-point surface for the mailboat rounds.
#ifndef PERENNIAL_SRC_CRASHREAL_JOURNAL_FS_H_
#define PERENNIAL_SRC_CRASHREAL_JOURNAL_FS_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/goosefs/filesys.h"
#include "src/goosefs/posix_fs.h"

namespace perennial::crashreal {

class JournalFs : public goosefs::Filesys {
 public:
  // Two-phase: construct with the journal path (O_TRUNC), then point the
  // inner PosixFilesys's Options::hook at OnPosixHook and SetInner it.
  explicit JournalFs(const std::string& journal_path);
  ~JournalFs() override;

  void SetInner(goosefs::PosixFilesys* inner) { inner_ = inner; }

  // PosixFilesys hook trampoline: journals *.dirsync points, then crosses
  // the killswitch with the point name.
  void OnPosixHook(const char* point, const std::string& dir);

  proc::Task<Result<goosefs::Fd>> Create(const std::string& dir, const std::string& name) override;
  proc::Task<Result<goosefs::Fd>> Open(const std::string& dir, const std::string& name) override;
  proc::Task<Status> Append(goosefs::Fd fd, const goosefs::Bytes& data) override;
  proc::Task<Result<goosefs::Bytes>> ReadAt(goosefs::Fd fd, uint64_t off, uint64_t count) override;
  proc::Task<Status> Sync(goosefs::Fd fd) override;
  proc::Task<Status> Close(goosefs::Fd fd) override;
  proc::Task<Result<std::vector<std::string>>> List(const std::string& dir) override;
  proc::Task<Result<bool>> Link(const std::string& src_dir, const std::string& src_name,
                                const std::string& dst_dir, const std::string& dst_name) override;
  proc::Task<Status> Delete(const std::string& dir, const std::string& name) override;

 private:
  void Line(const std::string& line);

  goosefs::PosixFilesys* inner_ = nullptr;
  int jfd_ = -1;
  // Guards the journal write and created_ — the netserv crash bridge runs
  // many server executor threads through one JournalFs. An intent line and
  // its syscall are NOT atomic together, but they don't need to be: the
  // journal only requires that each intent precedes its dirsync, which
  // per-op program order already gives.
  std::mutex mu_;
  // Created fds -> (dir, name), for sync lines.
  std::map<goosefs::Fd, std::pair<std::string, std::string>> created_;
};

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_JOURNAL_FS_H_
