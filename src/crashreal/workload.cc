#include "src/crashreal/workload.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/rand.h"

namespace perennial::crashreal {

uint64_t MixSeed(uint64_t seed, uint64_t round, uint64_t salt) {
  uint64_t st = seed ^ (round * 0x9E3779B97F4A7C15ull) ^ (salt * 0xBF58476D1CE4E5B9ull);
  return SplitMix64(st);
}

std::vector<TxnOp> GenTxnOps(uint64_t seed, uint64_t round, uint64_t ops, uint64_t num_addrs,
                             uint64_t log_capacity) {
  Rng rng(MixSeed(seed, round, 1));
  std::vector<TxnOp> out;
  out.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    if (i > 0 && rng.Chance(0.2)) {
      out.push_back(TxnOp{TxnOp::Kind::kCheckpoint, {}});
      continue;
    }
    TxnOp op;
    uint64_t n = 1 + rng.Below(std::min<uint64_t>(3, log_capacity));
    for (uint64_t j = 0; j < n; ++j) {
      // Values are globally unique so a stale block is unmistakable.
      op.records.emplace_back(rng.Below(num_addrs), MixSeed(seed, round, (i << 8) | j) | 1);
    }
    out.push_back(std::move(op));
  }
  return out;
}

void FoldTxn(std::map<uint64_t, uint64_t>* state, const TxnOp& op) {
  for (const auto& [addr, value] : op.records) {
    (*state)[addr] = value;
  }
}

std::vector<MailOp> GenMailOps(uint64_t seed, uint64_t round, uint64_t ops, uint64_t num_users) {
  Rng rng(MixSeed(seed, round, 2));
  std::vector<MailOp> out;
  out.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    MailOp op;
    op.user = rng.Below(num_users);
    op.kind = rng.Chance(0.2) ? MailOp::Kind::kPurge : MailOp::Kind::kDeliver;
    out.push_back(op);
  }
  return out;
}

std::string MailContents(uint64_t seed, uint64_t round, uint64_t op) {
  char head[96];
  std::snprintf(head, sizeof(head), "mail r%" PRIu64 " o%" PRIu64 " s%016" PRIx64 "\n", round, op,
                seed);
  std::string body(head);
  // Length spans the 512-byte pickup read granularity (short messages,
  // exactly-one-chunk messages, multi-chunk messages all occur).
  Rng rng(MixSeed(seed, round, 3 + op));
  uint64_t len = rng.Range(64, 1500);
  while (body.size() < len) {
    body.push_back(static_cast<char>('a' + (rng.Next() % 26)));
  }
  return body;
}

std::optional<MailTag> ParseMailTag(const std::string& contents) {
  MailTag tag;
  uint64_t seed_in_msg = 0;
  if (std::sscanf(contents.c_str(), "mail r%" SCNu64 " o%" SCNu64 " s%016" SCNx64 "\n", &tag.round,
                  &tag.op, &seed_in_msg) != 3) {
    return std::nullopt;
  }
  return tag;
}

void FoldMail(MailState* state, const MailOp& op, uint64_t round, uint64_t op_index) {
  if (op.kind == MailOp::Kind::kDeliver) {
    (*state)[op.user].insert(MailTag{round, op_index});
  } else {
    (*state)[op.user].clear();
  }
}

}  // namespace perennial::crashreal
