#include "src/crashreal/journal_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "src/base/panic.h"
#include "src/crashreal/killswitch.h"

namespace perennial::crashreal {

JournalFs::JournalFs(const std::string& journal_path) {
  jfd_ = ::open(journal_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC, 0644);
  PCC_ENSURE(jfd_ >= 0, "JournalFs: cannot open journal " + journal_path);
}

JournalFs::~JournalFs() {
  if (jfd_ >= 0) {
    ::close(jfd_);
  }
}

void JournalFs::Line(const std::string& line) {
  std::scoped_lock lock(mu_);
  std::string buf = line + "\n";
  size_t done = 0;
  while (done < buf.size()) {
    ssize_t n = ::write(jfd_, buf.data() + done, buf.size() - done);
    if (n < 0) {
      PCC_ENSURE(errno == EINTR, "JournalFs: journal write failed");
      continue;
    }
    done += static_cast<size_t>(n);
  }
  // No fsync: the journal only needs to survive SIGKILL (page cache does
  // that); it is a harness artifact, not part of the system under test.
}

void JournalFs::OnPosixHook(const char* point, const std::string& dir) {
  // A *.dirsync point fires after fsync(dir) returned success: record it
  // before crossing the killswitch so a kill at this point still counts
  // the completed sync.
  const char* dot = std::strrchr(point, '.');
  if (dot != nullptr && std::strcmp(dot, ".dirsync") == 0) {
    Line("dirsync " + dir);
  }
  Cross(point);
}

proc::Task<Result<goosefs::Fd>> JournalFs::Create(const std::string& dir,
                                                  const std::string& name) {
  Cross("fs.create");
  Line("create " + dir + " " + name);
  Result<goosefs::Fd> r = co_await inner_->Create(dir, name);
  if (!r.ok()) {
    Line("create-fail " + dir + " " + name);
  } else {
    std::scoped_lock lock(mu_);
    created_[r.value()] = {dir, name};
  }
  co_return r;
}

proc::Task<Result<goosefs::Fd>> JournalFs::Open(const std::string& dir, const std::string& name) {
  co_return co_await inner_->Open(dir, name);
}

proc::Task<Status> JournalFs::Append(goosefs::Fd fd, const goosefs::Bytes& data) {
  Cross("fs.append");
  co_return co_await inner_->Append(fd, data);
}

proc::Task<Result<goosefs::Bytes>> JournalFs::ReadAt(goosefs::Fd fd, uint64_t off,
                                                     uint64_t count) {
  co_return co_await inner_->ReadAt(fd, off, count);
}

proc::Task<Status> JournalFs::Sync(goosefs::Fd fd) {
  Cross("fs.sync");
  Status s = co_await inner_->Sync(fd);
  if (s.ok()) {
    std::pair<std::string, std::string> where;
    bool tracked = false;
    {
      std::scoped_lock lock(mu_);
      auto it = created_.find(fd);
      if (it != created_.end()) {
        where = it->second;
        tracked = true;
      }
    }
    if (tracked) {
      struct stat st;
      PCC_ENSURE(::fstat(static_cast<int>(fd), &st) == 0, "JournalFs: fstat after sync");
      Line("sync " + where.first + " " + where.second + " " + std::to_string(st.st_size));
    }
  }
  co_return s;
}

proc::Task<Status> JournalFs::Close(goosefs::Fd fd) {
  {
    std::scoped_lock lock(mu_);
    created_.erase(fd);
  }
  co_return co_await inner_->Close(fd);
}

proc::Task<Result<std::vector<std::string>>> JournalFs::List(const std::string& dir) {
  co_return co_await inner_->List(dir);
}

proc::Task<Result<bool>> JournalFs::Link(const std::string& src_dir, const std::string& src_name,
                                         const std::string& dst_dir, const std::string& dst_name) {
  Cross("fs.link");
  Line("link " + src_dir + " " + src_name + " " + dst_dir + " " + dst_name);
  Result<bool> ok = co_await inner_->Link(src_dir, src_name, dst_dir, dst_name);
  if (!ok.ok() || !ok.value()) {
    Line("link-fail " + src_dir + " " + src_name + " " + dst_dir + " " + dst_name);
  }
  co_return ok;
}

proc::Task<Status> JournalFs::Delete(const std::string& dir, const std::string& name) {
  Cross("fs.delete");
  Line("delete " + dir + " " + name);
  co_return co_await inner_->Delete(dir, name);
}

}  // namespace perennial::crashreal
