// Seeded workload generation for the crash harness.
//
// Every op, value, message body, and kill point is a pure function of
// (seed, round, op index), so a round — and therefore a divergence — is
// replayable from the trace header alone. The expected post-crash states
// are computed by folding the generated ops over the carried state.
#ifndef PERENNIAL_SRC_CRASHREAL_WORKLOAD_H_
#define PERENNIAL_SRC_CRASHREAL_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace perennial::crashreal {

// Deterministic per-(seed, round, salt) stream seed; every harness draw
// derives from this so a round is a pure function of the trace header.
uint64_t MixSeed(uint64_t seed, uint64_t round, uint64_t salt);

// ---- TxnLog ----

struct TxnOp {
  enum class Kind { kBatch, kCheckpoint };
  Kind kind = Kind::kBatch;
  std::vector<std::pair<uint64_t, uint64_t>> records;  // (addr, value) for kBatch
};

// `ops` operations for round `round`: mostly small commit batches, with a
// checkpoint roughly every fifth op (batch sizes bounded by log_capacity).
std::vector<TxnOp> GenTxnOps(uint64_t seed, uint64_t round, uint64_t ops, uint64_t num_addrs,
                             uint64_t log_capacity);

// Applies `op` to the address map (checkpoints are value-invisible).
void FoldTxn(std::map<uint64_t, uint64_t>* state, const TxnOp& op);

// ---- Mailboat ----

struct MailOp {
  enum class Kind { kDeliver, kPurge };  // purge = pickup + delete all + unlock
  Kind kind = Kind::kDeliver;
  uint64_t user = 0;
};

// A message's identity across rounds: which op of which round wrote it.
struct MailTag {
  uint64_t round = 0;
  uint64_t op = 0;
  auto operator<=>(const MailTag&) const = default;
};

std::vector<MailOp> GenMailOps(uint64_t seed, uint64_t round, uint64_t ops, uint64_t num_users);

// The exact message body op `op` of round `round` delivers: a parseable
// tag line followed by deterministic padding with a length that crosses
// the 512-byte pickup read granularity.
std::string MailContents(uint64_t seed, uint64_t round, uint64_t op);

// Recovers the tag from a message body (nullopt: not a workload message).
std::optional<MailTag> ParseMailTag(const std::string& contents);

// Mailbox-set fold: deliver adds its tag to `user`'s box, purge empties it.
using MailState = std::map<uint64_t, std::set<MailTag>>;
void FoldMail(MailState* state, const MailOp& op, uint64_t round, uint64_t op_index);

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_WORKLOAD_H_
