// Replayable crash-harness divergence artifact ("pcc-crashreal v1").
//
// Mirrors the refinement checker's pcc-trace files (src/refine/minimize.h):
// plain text, self-contained, one-command repro. Because every workload op
// and kill point is a pure function of (seed, round), the artifact needs no
// schedule — the header alone lets `bench_crashreal --replay <file>` re-run
// the soak from round 0 up to the diverging round (state carries across
// rounds, so earlier rounds must be replayed too) and check that the same
// divergence with the same classification reappears.
//
// Format: first line `pcc-crashreal v1`, then `key value` lines; `mutate`
// may repeat (one enabled mutation flag per line); `detail` holds the rest
// of its line verbatim.
#ifndef PERENNIAL_SRC_CRASHREAL_TRACE_H_
#define PERENNIAL_SRC_CRASHREAL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace perennial::crashreal {

struct CrashTrace {
  std::string system;  // "txnlog" | "mailboat"
  std::string regime;  // "kill" | "powerfail"
  uint64_t seed = 0;
  uint64_t round = 0;    // the diverging round
  uint64_t kill_at = 0;  // hook crossing the child was killed at (0: clean round)
  uint64_t ops_per_round = 0;
  // TxnLog shape.
  uint64_t num_addrs = 0;
  uint64_t log_capacity = 0;
  // Mailboat shape.
  uint64_t num_users = 0;
  bool sync_on_deliver = true;
  bool fsync_dirs = true;
  // Enabled mutation flags, by bench_crashreal --mutate name.
  std::vector<std::string> mutations;
  std::string classification;  // implementation-bug | model-too-weak | model-too-strong
  std::string detail;          // human-readable divergence description
};

std::string FormatCrashTrace(const CrashTrace& trace);
Status ParseCrashTrace(const std::string& text, CrashTrace* out);

Status SaveCrashTrace(const std::string& path, const CrashTrace& trace);
Status LoadCrashTrace(const std::string& path, CrashTrace* out);

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_TRACE_H_
