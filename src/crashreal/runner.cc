#include "src/crashreal/runner.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/base/panic.h"
#include "src/base/rand.h"
#include "src/crashreal/journal_fs.h"
#include "src/crashreal/killswitch.h"
#include "src/crashreal/projection.h"
#include "src/crashreal/shm.h"
#include "src/crashreal/workload.h"
#include "src/disk/posix_disk.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mail_harness.h"
#include "src/refine/explorer.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::crashreal {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Failed(what + ": " + std::strerror(errno));
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + path);
  }
  return Status::Ok();
}

// ---- child protocol -------------------------------------------------------

// How a child ended. kDied covers aborts (a PCC_ENSURE tripping inside the
// engine IS a divergence finding, not a harness failure) and hangs.
enum class ChildEnd { kClean, kKilled, kDied, kHung };

// Forks, runs `body` in the child (which then _exit(0)s), and reaps it.
// Status is reserved for harness trouble (fork/waitpid failing).
Result<ChildEnd> RunChild(const std::function<void()>& body) {
  pid_t pid = ::fork();
  if (pid < 0) {
    return ErrnoStatus("fork");
  }
  if (pid == 0) {
    body();
    ::_exit(0);
  }
  // Backstop: a wedged child (liveness bug) must fail the round, not the
  // whole soak process.
  constexpr int kTimeoutMs = 60'000;
  int status = 0;
  for (int waited_ms = 0;; waited_ms += 2) {
    pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      break;
    }
    if (r < 0) {
      return ErrnoStatus("waitpid");
    }
    if (waited_ms >= kTimeoutMs) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return ChildEnd::kHung;
    }
    ::usleep(2000);
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return ChildEnd::kClean;
  }
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    return ChildEnd::kKilled;
  }
  return ChildEnd::kDied;
}

// ---- divergence recording -------------------------------------------------

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n') {
      c = ';';
    }
  }
  return s;
}

void RecordDivergence(const CrashRealConfig& config, uint64_t round, uint64_t kill_at,
                      const std::string& classification, const std::string& detail,
                      SoakSummary* summary) {
  Divergence d;
  d.round = round;
  d.kill_at = kill_at;
  d.classification = classification;
  d.detail = detail;

  CrashTrace t;
  t.system = config.system;
  t.regime = config.regime;
  t.seed = config.seed;
  t.round = round;
  t.kill_at = kill_at;
  t.ops_per_round = config.ops_per_round;
  t.num_addrs = config.num_addrs;
  t.log_capacity = config.log_capacity;
  t.num_users = config.num_users;
  t.sync_on_deliver = config.sync_on_deliver;
  t.fsync_dirs = config.fsync_dirs;
  t.mutations = config.mutation_names;
  t.classification = classification;
  t.detail = OneLine(detail);
  std::string dir = config.artifact_dir.empty() ? config.workdir : config.artifact_dir;
  std::string path = dir + "/crashreal-" + config.system + "-" + config.regime + "-r" +
                     std::to_string(round) + ".trace";
  if (SaveCrashTrace(path, t).ok()) {
    d.trace_path = path;
  }
  summary->divergences.push_back(std::move(d));
}

// ---- model cross-runs -----------------------------------------------------

refine::ExplorerOptions CrossCheckOptions() {
  refine::ExplorerOptions opts;
  opts.mode = refine::ExplorerOptions::Mode::kExhaustive;
  opts.max_crashes = 1;
  opts.max_violations = 1;
  opts.max_executions = 200'000;
  opts.dedup_histories = true;
  return opts;
}

// Cross-runs a small window of the round's ops under the modeled engine.
// Returns true when the model ALSO reports a spec violation — the bug is in
// the engine, not in the gap between model and reality.
bool ModelViolatesTxn(const CrashRealConfig& config, const std::vector<TxnOp>& ops,
                      uint64_t done) {
  systems::TxnHarnessOptions topts;
  topts.num_addrs = config.num_addrs;
  topts.log_capacity = config.log_capacity;
  topts.mutations = config.txn_mutations;
  if (config.regime == "powerfail") {
    // The modeled analogue of the volatile write cache: writes may tear and
    // an unsynced tail of them may vanish at the crash.
    topts.fault_plan.torn_writes = 1;
    topts.fault_plan.unsynced_tail = 2;
  }
  // A window of ops around the kill keeps the exhaustive run tractable; the
  // commit/checkpoint bug classes all manifest within a couple of ops.
  size_t lo = done > 1 ? static_cast<size_t>(done - 1) : 0;
  size_t hi = std::min(ops.size(), static_cast<size_t>(done + 2));
  if (lo >= hi) {
    lo = 0;
    hi = std::min<size_t>(ops.size(), 2);
  }
  std::vector<systems::TxnSpec::Op> client;
  for (size_t i = lo; i < hi; ++i) {
    if (ops[i].kind == TxnOp::Kind::kCheckpoint) {
      client.push_back(systems::TxnSpec::MakeCheckpoint());
    } else {
      client.push_back(systems::TxnSpec::MakeBatch(ops[i].records));
    }
  }
  topts.client_ops = {client};
  systems::TxnSpec spec;
  spec.num_addrs = config.num_addrs;
  refine::Explorer<systems::TxnSpec> engine(
      spec, [topts] { return systems::MakeTxnInstance(topts); }, CrossCheckOptions());
  return !engine.Run().violations.empty();
}

bool ModelViolatesMail(const CrashRealConfig& config, const std::vector<MailOp>& ops,
                       uint64_t done) {
  mailboat::MailHarnessOptions mopts;
  mopts.num_users = config.num_users;
  mopts.chunk_size = 2;
  mopts.read_size = 2;
  mopts.mutations = config.mail_mutations;
  mopts.deferred_durability = config.regime == "powerfail";
  mopts.sync_on_deliver = config.sync_on_deliver;
  size_t lo = done > 1 ? static_cast<size_t>(done - 1) : 0;
  size_t hi = std::min(ops.size(), static_cast<size_t>(done + 2));
  if (lo >= hi) {
    lo = 0;
    hi = std::min<size_t>(ops.size(), 2);
  }
  std::vector<mailboat::MailAction> script;
  for (size_t i = lo; i < hi; ++i) {
    mailboat::MailAction a;
    a.user = ops[i].user;
    if (ops[i].kind == MailOp::Kind::kDeliver) {
      a.kind = mailboat::MailAction::Kind::kDeliver;
      a.contents = "m" + std::to_string(i);  // spec-level identity only
    } else {
      a.kind = mailboat::MailAction::Kind::kPickupDeleteAllUnlock;
    }
    script.push_back(std::move(a));
  }
  mopts.client_scripts = {script};
  mailboat::MailSpec spec;
  spec.num_users = mopts.num_users;
  refine::Explorer<mailboat::MailSpec> engine(
      spec, [mopts] { return mailboat::MakeMailInstance(mopts); }, CrossCheckOptions());
  return !engine.Run().violations.empty();
}

// Divergence classification (runner.h header comment). A hung child is an
// implementation bug by definition — the spec requires operations and
// recovery to return.
template <typename Ops>
std::string Classify(const CrashRealConfig& config, const Ops& ops, uint64_t done, bool hung,
                     bool (*model_violates)(const CrashRealConfig&, const Ops&, uint64_t)) {
  if (hung) {
    return "implementation-bug";
  }
  if (!config.classify) {
    return "unclassified";
  }
  return model_violates(config, ops, done) ? "implementation-bug" : "model-too-weak";
}

// ---- TxnLog soak ----------------------------------------------------------

std::string TxnImagePath(const CrashRealConfig& config) { return config.workdir + "/txnlog.img"; }

uint64_t TxnBlocks(const CrashRealConfig& config) {
  return 1 + config.log_capacity + config.num_addrs;
}

Status FormatTxnImage(const CrashRealConfig& config) {
  auto d = disk::PosixDisk::Open(TxnImagePath(config), TxnBlocks(config),
                                 systems::EncodeTxnHeader(0, 0), disk::PosixDisk::Options{},
                                 /*format=*/true);
  return d.ok() ? Status::Ok() : d.status();
}

// The child-A workload body: recover, then run ops, reporting progress.
void TxnWorkloadChild(const CrashRealConfig& config, RoundShm* shm, uint64_t round,
                      uint64_t kill_at, const std::vector<TxnOp>& ops) {
  shm->phase.store(static_cast<int>(ChildPhase::kWorkloadRunning));
  ArmKillSwitch(shm, kill_at);
  disk::PosixDisk::Options dopts;
  dopts.writeback = config.regime == "powerfail";
  dopts.flush_shuffle_seed = MixSeed(config.seed, round, 7);
  dopts.hook = [](const char* point) { Cross(point); };
  auto dr = disk::PosixDisk::Open(TxnImagePath(config), TxnBlocks(config),
                                  systems::EncodeTxnHeader(0, 0), std::move(dopts),
                                  /*format=*/false);
  PCC_ENSURE(dr.ok(), "crashreal: open txn image: " + dr.status().ToString());
  std::unique_ptr<disk::PosixDisk> dev = std::move(dr).value();
  goose::World world;
  systems::TxnLog log(&world, dev.get(), config.num_addrs, config.log_capacity,
                      config.txn_mutations);
  world.Crash();  // recovery runs post-crash generation; invalidates ctor leases
  proc::RunSyncVoid(log.Recover([](uint64_t) {}));
  for (size_t i = 0; i < ops.size(); ++i) {
    Cross("op.start");
    shm->ops_started.fetch_add(1, std::memory_order_release);
    if (ops[i].kind == TxnOp::Kind::kCheckpoint) {
      proc::RunSyncVoid(log.Checkpoint());
    } else {
      proc::RunSyncVoid(log.CommitBatch(ops[i].records, i));
    }
    shm->ops_done.fetch_add(1, std::memory_order_release);
  }
  shm->phase.store(static_cast<int>(ChildPhase::kWorkloadDone));
  DisarmKillSwitch();
}

// The child-B recovery body: recover on a synchronous device, dump every
// address into the result slots.
void TxnRecoveryChild(const CrashRealConfig& config, RoundShm* shm) {
  shm->phase.store(static_cast<int>(ChildPhase::kRecoveryRunning));
  auto dr = disk::PosixDisk::Open(TxnImagePath(config), TxnBlocks(config),
                                  systems::EncodeTxnHeader(0, 0), disk::PosixDisk::Options{},
                                  /*format=*/false);
  PCC_ENSURE(dr.ok(), "crashreal: reopen txn image: " + dr.status().ToString());
  std::unique_ptr<disk::PosixDisk> dev = std::move(dr).value();
  goose::World world;
  systems::TxnLog log(&world, dev.get(), config.num_addrs, config.log_capacity,
                      config.txn_mutations);
  world.Crash();  // recovery runs post-crash generation; invalidates ctor leases
  proc::RunSyncVoid(log.Recover([](uint64_t) {}));
  for (uint64_t a = 0; a < config.num_addrs; ++a) {
    uint64_t value = proc::RunSync(log.Read(a));
    uint64_t idx = shm->result_count.fetch_add(1);
    PCC_ENSURE(idx < kMaxResults, "crashreal: result slots exhausted");
    shm->results[idx] = ResultSlot{a, value, 0, 0};
  }
  shm->phase.store(static_cast<int>(ChildPhase::kRecoveryDone));
}

Status RunTxnSoak(const CrashRealConfig& config, RoundShm* shm, SoakSummary* summary) {
  Status fs = FormatTxnImage(config);
  if (!fs.ok()) {
    return fs;
  }
  std::map<uint64_t, uint64_t> state;  // expected durable value per address
  uint64_t h_est = 0;                  // hook crossings of the last clean round
  for (uint64_t round = 0; round < config.rounds; ++round) {
    std::vector<TxnOp> ops = GenTxnOps(config.seed, round, config.ops_per_round,
                                       config.num_addrs, config.log_capacity);
    uint64_t kill_at = 0;  // round 0 profiles the crossing count
    if (round > 0 && h_est > 0) {
      Rng rng(MixSeed(config.seed, round, 11));
      kill_at = 1 + rng.Below(h_est);
    }
    ResetRoundShm(shm);
    Result<ChildEnd> a_end =
        RunChild([&] { TxnWorkloadChild(config, shm, round, kill_at, ops); });
    if (!a_end.ok()) {
      return a_end.status();
    }
    summary->rounds += 1;
    uint64_t done = shm->ops_done.load();
    uint64_t started = shm->ops_started.load();
    uint64_t crossed = shm->hooks_crossed.load();
    summary->hook_crossings += crossed;
    std::string where = std::string("round ") + std::to_string(round) + " kill_at " +
                        std::to_string(kill_at) + " at '" + shm->last_point + "' ops " +
                        std::to_string(done) + "/" + std::to_string(started) + "/" +
                        std::to_string(ops.size());
    if (a_end.value() == ChildEnd::kClean) {
      summary->clean += 1;
      h_est = crossed > 0 ? crossed : h_est;
    } else if (a_end.value() == ChildEnd::kKilled && kill_at > 0) {
      summary->killed += 1;
    } else {
      RecordDivergence(config, round, kill_at,
                       Classify(config, ops, done, a_end.value() == ChildEnd::kHung,
                                ModelViolatesTxn),
                       "workload child died outside the kill plan: " + where, summary);
      Status ffs = FormatTxnImage(config);  // restart from a clean image
      if (!ffs.ok()) {
        return ffs;
      }
      state.clear();
      continue;
    }
    // Note: in the powerfail regime the dead child's write-back cache IS
    // the power cut — the backing file already holds the projected state,
    // so (unlike mailboat) no parent-side pruning happens here.
    Result<ChildEnd> b_end = RunChild([&] { TxnRecoveryChild(config, shm); });
    if (!b_end.ok()) {
      return b_end.status();
    }
    if (b_end.value() != ChildEnd::kClean) {
      RecordDivergence(config, round, kill_at,
                       Classify(config, ops, done, b_end.value() == ChildEnd::kHung,
                                ModelViolatesTxn),
                       "recovery child crashed: " + where, summary);
      Status ffs = FormatTxnImage(config);
      if (!ffs.ok()) {
        return ffs;
      }
      state.clear();
      continue;
    }
    // Validate: the dump must be the fold of the completed ops, or of one
    // more when the kill struck inside an op whose commit point had landed.
    std::map<uint64_t, uint64_t> dump;
    uint64_t results = shm->result_count.load();
    for (uint64_t i = 0; i < results && i < kMaxResults; ++i) {
      dump[shm->results[i].a] = shm->results[i].b;
    }
    auto fold_to = [&](uint64_t n) {
      std::map<uint64_t, uint64_t> s = state;
      for (uint64_t a = 0; a < config.num_addrs; ++a) {
        s.try_emplace(a, 0);
      }
      for (uint64_t i = 0; i < n && i < ops.size(); ++i) {
        FoldTxn(&s, ops[i]);
      }
      return s;
    };
    std::map<uint64_t, uint64_t> at_done = fold_to(done);
    bool match = dump == at_done;
    if (!match && started > done) {
      match = dump == fold_to(done + 1);
    }
    if (!match) {
      std::string diff;
      for (const auto& [a, v] : dump) {
        auto it = at_done.find(a);
        if (it == at_done.end() || it->second != v) {
          diff += " addr " + std::to_string(a) + " got " + std::to_string(v) + " want " +
                  std::to_string(it == at_done.end() ? 0 : it->second);
        }
      }
      RecordDivergence(config, round, kill_at,
                       Classify(config, ops, done, false, ModelViolatesTxn),
                       "post-recovery state mismatch: " + where + diff, summary);
      if (summary->divergences.size() >= 8) {
        return Status::Ok();  // baseline is broken; further rounds add noise
      }
    }
    state = std::move(dump);  // ground truth carries into the next round
    if (config.cross_check_every > 0 && match && round % config.cross_check_every == 0 &&
        ModelViolatesTxn(config, ops, done)) {
      RecordDivergence(config, round, kill_at, "model-too-strong",
                       "model reports a violation real storage never exhibits: " + where,
                       summary);
    }
  }
  return Status::Ok();
}

// ---- Mailboat soak --------------------------------------------------------

std::string MailRoot(const CrashRealConfig& config) { return config.workdir + "/mail"; }
std::string JournalPath(const CrashRealConfig& config) { return config.workdir + "/journal.txt"; }

Status FormatMailTree(const CrashRealConfig& config) {
  Status s = EnsureDir(MailRoot(config));
  if (!s.ok()) {
    return s;
  }
  goosefs::PosixFilesys fs(MailRoot(config), goosefs::PosixFilesys::Options{});
  return fs.EnsureDirs(mailboat::Mailboat::DirLayout(config.num_users), /*clear_contents=*/true);
}

mailboat::Mailboat::Options MailOptions(const CrashRealConfig& config, uint64_t round) {
  mailboat::Mailboat::Options mopts;
  mopts.num_users = config.num_users;
  mopts.chunk_size = 512;  // multi-chunk appends for the longer bodies
  mopts.read_size = 512;
  mopts.rng_seed = MixSeed(config.seed, round, 5);
  mopts.sync_on_deliver = config.sync_on_deliver;
  return mopts;
}

void MailWorkloadChild(const CrashRealConfig& config, RoundShm* shm, uint64_t round,
                       uint64_t kill_at, const std::vector<MailOp>& ops) {
  shm->phase.store(static_cast<int>(ChildPhase::kWorkloadRunning));
  ArmKillSwitch(shm, kill_at);
  JournalFs journal(JournalPath(config));
  goosefs::PosixFilesys::Options fopts;
  fopts.fsync_dirs = config.fsync_dirs;
  fopts.hook = [&journal](const char* point, const std::string& dir) {
    journal.OnPosixHook(point, dir);
  };
  goosefs::PosixFilesys fs(MailRoot(config), std::move(fopts));
  // clear_contents=false: surviving state — including a killed predecessor's
  // temp files — must be kept for Recover to deal with.
  Status es = fs.EnsureDirs(mailboat::Mailboat::DirLayout(config.num_users),
                            /*clear_contents=*/false);
  PCC_ENSURE(es.ok(), "crashreal: EnsureDirs: " + es.ToString());
  journal.SetInner(&fs);
  goose::World world;
  mailboat::Mailboat mail(&world, &journal, MailOptions(config, round), config.mail_mutations);
  world.Crash();  // recovery runs post-crash generation; invalidates ctor leases
  proc::RunSyncVoid(mail.Recover());
  for (size_t i = 0; i < ops.size(); ++i) {
    Cross("op.start");
    shm->ops_started.fetch_add(1, std::memory_order_release);
    if (ops[i].kind == MailOp::Kind::kDeliver) {
      (void)proc::RunSync(
          mail.Deliver(ops[i].user, goosefs::BytesOfString(MailContents(config.seed, round, i))));
    } else {
      Result<std::vector<mailboat::Message>> msgs = proc::RunSync(mail.Pickup(ops[i].user));
      PCC_ENSURE(msgs.ok(), "crashreal: pickup: " + msgs.status().ToString());
      for (const mailboat::Message& m : msgs.value()) {
        Status ds = proc::RunSync(mail.Delete(ops[i].user, m.id));
        PCC_ENSURE(ds.ok(), "crashreal: delete: " + ds.ToString());
      }
      proc::RunSyncVoid(mail.Unlock(ops[i].user));
    }
    shm->ops_done.fetch_add(1, std::memory_order_release);
  }
  shm->phase.store(static_cast<int>(ChildPhase::kWorkloadDone));
  DisarmKillSwitch();
}

void MailRecoveryChild(const CrashRealConfig& config, RoundShm* shm, uint64_t round) {
  shm->phase.store(static_cast<int>(ChildPhase::kRecoveryRunning));
  goosefs::PosixFilesys::Options fopts;
  fopts.fsync_dirs = config.fsync_dirs;
  goosefs::PosixFilesys fs(MailRoot(config), std::move(fopts));
  Status es = fs.EnsureDirs(mailboat::Mailboat::DirLayout(config.num_users),
                            /*clear_contents=*/false);
  PCC_ENSURE(es.ok(), "crashreal: EnsureDirs (recovery): " + es.ToString());
  goose::World world;
  mailboat::Mailboat mail(&world, &fs, MailOptions(config, round), config.mail_mutations);
  world.Crash();  // recovery runs post-crash generation; invalidates ctor leases
  proc::RunSyncVoid(mail.Recover());
  auto spool = proc::RunSync(fs.List("spool"));
  PCC_ENSURE(spool.ok(), "crashreal: list spool: " + spool.status().ToString());
  shm->spool_leftover.store(spool.value().size());
  for (uint64_t u = 0; u < config.num_users; ++u) {
    Result<std::vector<mailboat::Message>> picked = proc::RunSync(mail.Pickup(u));
    PCC_ENSURE(picked.ok(), "crashreal: pickup: " + picked.status().ToString());
    for (const mailboat::Message& m : picked.value()) {
      ResultSlot slot{u, 0, 0, 0};
      std::optional<MailTag> tag = ParseMailTag(m.contents);
      if (!tag.has_value()) {
        slot.d = kMsgUnparsed;
      } else {
        slot.b = tag->round;
        slot.c = tag->op;
        slot.d = m.contents == MailContents(config.seed, tag->round, tag->op) ? kMsgFull
                                                                              : kMsgCorrupt;
      }
      uint64_t idx = shm->result_count.fetch_add(1);
      PCC_ENSURE(idx < kMaxResults, "crashreal: result slots exhausted");
      shm->results[idx] = slot;
    }
    proc::RunSyncVoid(mail.Unlock(u));
  }
  shm->phase.store(static_cast<int>(ChildPhase::kRecoveryDone));
}

// Drops empty mailboxes so "user has no mail" and "user never had mail"
// compare equal.
MailState Normalized(MailState s) {
  for (auto it = s.begin(); it != s.end();) {
    it = it->second.empty() ? s.erase(it) : std::next(it);
  }
  return s;
}

Status RunMailSoak(const CrashRealConfig& config, RoundShm* shm, SoakSummary* summary) {
  Status fs = FormatMailTree(config);
  if (!fs.ok()) {
    return fs;
  }
  std::vector<std::string> dirs = mailboat::Mailboat::DirLayout(config.num_users);
  MailState state;
  uint64_t h_est = 0;
  for (uint64_t round = 0; round < config.rounds; ++round) {
    std::vector<MailOp> ops =
        GenMailOps(config.seed, round, config.ops_per_round, config.num_users);
    uint64_t kill_at = 0;
    if (round > 0 && h_est > 0) {
      Rng rng(MixSeed(config.seed, round, 12));
      kill_at = 1 + rng.Below(h_est);
    }
    // The durable pre-round listing anchors the power-fail projection.
    Result<DirListing> base = ListDirs(MailRoot(config), dirs);
    if (!base.ok()) {
      return base.status();
    }
    ResetRoundShm(shm);
    Result<ChildEnd> a_end =
        RunChild([&] { MailWorkloadChild(config, shm, round, kill_at, ops); });
    if (!a_end.ok()) {
      return a_end.status();
    }
    summary->rounds += 1;
    uint64_t done = shm->ops_done.load();
    uint64_t started = shm->ops_started.load();
    uint64_t crossed = shm->hooks_crossed.load();
    summary->hook_crossings += crossed;
    std::string where = std::string("round ") + std::to_string(round) + " kill_at " +
                        std::to_string(kill_at) + " at '" + shm->last_point + "' ops " +
                        std::to_string(done) + "/" + std::to_string(started) + "/" +
                        std::to_string(ops.size());
    bool round_ok = true;
    if (a_end.value() == ChildEnd::kClean) {
      summary->clean += 1;
      h_est = crossed > 0 ? crossed : h_est;
    } else if (a_end.value() == ChildEnd::kKilled && kill_at > 0) {
      summary->killed += 1;
    } else {
      RecordDivergence(config, round, kill_at,
                       Classify(config, ops, done, a_end.value() == ChildEnd::kHung,
                                ModelViolatesMail),
                       "workload child died outside the kill plan: " + where, summary);
      round_ok = false;
    }
    if (round_ok && config.regime == "powerfail") {
      Result<DirListing> projected = ApplyPowerFailProjection(MailRoot(config),
                                                              JournalPath(config), dirs,
                                                              base.value());
      if (!projected.ok()) {
        return projected.status();
      }
    }
    if (round_ok) {
      Result<ChildEnd> b_end = RunChild([&] { MailRecoveryChild(config, shm, round); });
      if (!b_end.ok()) {
        return b_end.status();
      }
      if (b_end.value() != ChildEnd::kClean) {
        RecordDivergence(config, round, kill_at,
                         Classify(config, ops, done, b_end.value() == ChildEnd::kHung,
                                  ModelViolatesMail),
                         "recovery child crashed: " + where, summary);
        round_ok = false;
      }
    }
    if (!round_ok) {
      Status ffs = FormatMailTree(config);  // restart from a clean tree
      if (!ffs.ok()) {
        return ffs;
      }
      state.clear();
      continue;
    }
    // Validate the dump.
    std::string bad_contents;
    MailState dump;
    uint64_t results = shm->result_count.load();
    for (uint64_t i = 0; i < results && i < kMaxResults; ++i) {
      const ResultSlot& slot = shm->results[i];
      if (slot.d != kMsgFull) {
        bad_contents += " user " + std::to_string(slot.a) +
                        (slot.d == kMsgCorrupt
                             ? " corrupt message r" + std::to_string(slot.b) + " o" +
                                   std::to_string(slot.c)
                             : " unparseable message");
      } else {
        dump[slot.a].insert(MailTag{slot.b, slot.c});
      }
    }
    uint64_t spool_leftover = shm->spool_leftover.load();
    MailState expected = state;
    for (uint64_t i = 0; i < done && i < ops.size(); ++i) {
      FoldMail(&expected, ops[i], round, i);
    }
    expected = Normalized(std::move(expected));
    dump = Normalized(std::move(dump));
    bool match = bad_contents.empty() && spool_leftover == 0 && dump == expected;
    if (!match && bad_contents.empty() && spool_leftover == 0 && started > done &&
        done < ops.size()) {
      const MailOp& inflight = ops[done];
      if (inflight.kind == MailOp::Kind::kDeliver) {
        MailState with = expected;
        with[inflight.user].insert(MailTag{round, done});
        match = dump == Normalized(std::move(with));
      } else {
        // In-flight purge: that user's surviving box is any subset of the
        // pre-purge contents; everyone else must match exactly.
        MailState d2 = dump;
        MailState e2 = expected;
        std::set<MailTag> du = d2[inflight.user];
        std::set<MailTag> eu = e2[inflight.user];
        d2.erase(inflight.user);
        e2.erase(inflight.user);
        match = d2 == e2 && std::includes(eu.begin(), eu.end(), du.begin(), du.end());
      }
    }
    if (!match) {
      std::string detail = "post-recovery mailbox mismatch: " + where;
      if (!bad_contents.empty()) {
        detail += ";" + bad_contents;
      }
      if (spool_leftover != 0) {
        detail += "; spool has " + std::to_string(spool_leftover) + " leftovers after Recover";
      }
      detail += "; surviving " + std::to_string(results) + " messages, expected " +
                std::to_string([&] {
                  size_t n = 0;
                  for (const auto& [u, box] : expected) {
                    n += box.size();
                  }
                  return n;
                }());
      RecordDivergence(config, round, kill_at,
                       Classify(config, ops, done, false, ModelViolatesMail), detail, summary);
      if (summary->divergences.size() >= 8) {
        return Status::Ok();
      }
    }
    state = std::move(dump);
    if (config.cross_check_every > 0 && match && round % config.cross_check_every == 0 &&
        ModelViolatesMail(config, ops, done)) {
      RecordDivergence(config, round, kill_at, "model-too-strong",
                       "model reports a violation real storage never exhibits: " + where,
                       summary);
    }
  }
  return Status::Ok();
}

}  // namespace

bool ApplyMutationName(const std::string& name, CrashRealConfig* config) {
  if (name == "no_write_barrier") {
    config->txn_mutations.no_write_barrier = true;
  } else if (name == "header_before_records") {
    config->txn_mutations.header_before_records = true;
  } else if (name == "truncate_before_apply") {
    config->txn_mutations.truncate_before_apply = true;
  } else if (name == "deliver_in_place") {
    config->mail_mutations.deliver_in_place = true;
  } else if (name == "recovery_deletes_mail") {
    config->mail_mutations.recovery_deletes_mail = true;
  } else if (name == "pickup_512_loop") {
    config->mail_mutations.pickup_512_loop = true;
  } else if (name == "no_sync_on_deliver") {
    config->sync_on_deliver = false;
  } else if (name == "no_dir_fsync") {
    config->fsync_dirs = false;
  } else {
    return false;
  }
  config->mutation_names.push_back(name);
  return true;
}

CrashRealConfig ConfigFromTrace(const CrashTrace& trace, const std::string& workdir) {
  CrashRealConfig config;
  config.system = trace.system;
  config.regime = trace.regime;
  config.seed = trace.seed;
  config.rounds = trace.round + 1;
  config.ops_per_round = trace.ops_per_round;
  config.num_addrs = trace.num_addrs;
  config.log_capacity = trace.log_capacity;
  config.num_users = trace.num_users;
  config.workdir = workdir;
  for (const std::string& m : trace.mutations) {
    PCC_ENSURE(ApplyMutationName(m, &config), "crashreal trace: unknown mutation " + m);
  }
  // The explicit fields win over what the mutation names implied (a trace
  // written by an older bench may carry only the fields).
  config.sync_on_deliver = trace.sync_on_deliver;
  config.fsync_dirs = trace.fsync_dirs;
  return config;
}

Result<SoakSummary> RunSoak(const CrashRealConfig& config) {
  if (config.system != "txnlog" && config.system != "mailboat") {
    return Status::Invalid("crashreal: bad system '" + config.system + "'");
  }
  if (config.regime != "kill" && config.regime != "powerfail") {
    return Status::Invalid("crashreal: bad regime '" + config.regime + "'");
  }
  if (config.workdir.empty()) {
    return Status::Invalid("crashreal: workdir is required");
  }
  Status ds = EnsureDir(config.workdir);
  if (!ds.ok()) {
    return ds;
  }
  if (!config.artifact_dir.empty()) {
    Status as = EnsureDir(config.artifact_dir);
    if (!as.ok()) {
      return as;
    }
  }
  RoundShm* shm = MapRoundShm();
  if (shm == nullptr) {
    return Status::Failed("crashreal: mmap of the round page failed");
  }
  SoakSummary summary;
  Status s = config.system == "txnlog" ? RunTxnSoak(config, shm, &summary)
                                       : RunMailSoak(config, shm, &summary);
  UnmapRoundShm(shm);
  if (!s.ok()) {
    return s;
  }
  return summary;
}

Result<SoakSummary> ReplayTrace(const CrashRealConfig& config, const CrashTrace& trace,
                                bool* reproduced) {
  CrashRealConfig replay = config;
  replay.rounds = trace.round + 1;
  Result<SoakSummary> summary = RunSoak(replay);
  if (!summary.ok()) {
    return summary;
  }
  *reproduced = false;
  for (const Divergence& d : summary.value().divergences) {
    if (d.round == trace.round && (trace.classification.empty() || trace.classification == "unclassified" ||
                                   d.classification == trace.classification)) {
      *reproduced = true;
    }
  }
  return summary;
}

}  // namespace perennial::crashreal
