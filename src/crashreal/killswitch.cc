#include "src/crashreal/killswitch.h"

#include <signal.h>
#include <sys/mman.h>

#include <cstring>
#include <new>

#include "src/base/panic.h"

namespace perennial::crashreal {

namespace {
RoundShm* g_shm = nullptr;
uint64_t g_kill_at = 0;
uint64_t g_crossings = 0;
}  // namespace

void ArmKillSwitch(RoundShm* shm, uint64_t kill_at) {
  g_shm = shm;
  g_kill_at = kill_at;
  g_crossings = 0;
}

void DisarmKillSwitch() {
  g_shm = nullptr;
  g_kill_at = 0;
  g_crossings = 0;
}

void Cross(const char* point) {
  if (g_shm == nullptr) {
    return;
  }
  ++g_crossings;
  g_shm->hooks_crossed.store(g_crossings, std::memory_order_release);
  std::strncpy(g_shm->last_point, point, sizeof(g_shm->last_point) - 1);
  if (g_kill_at != 0 && g_crossings == g_kill_at) {
    // Die exactly here. SIGKILL is uncatchable: no destructors, no buffered
    // flushes — the kernel state at this instant is the surviving state.
    ::raise(SIGKILL);
  }
}

uint64_t Crossings() { return g_crossings; }

RoundShm* MapRoundShm() {
  void* p = ::mmap(nullptr, sizeof(RoundShm), PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  PCC_ENSURE(p != MAP_FAILED, "crashreal: mmap failed");
  return new (p) RoundShm();
}

void UnmapRoundShm(RoundShm* shm) {
  if (shm != nullptr) {
    ::munmap(shm, sizeof(RoundShm));
  }
}

void ResetRoundShm(RoundShm* shm) {
  shm->ops_started.store(0);
  shm->ops_done.store(0);
  shm->hooks_crossed.store(0);
  shm->phase.store(0);
  shm->result_count.store(0);
  shm->spool_leftover.store(0);
  std::memset(shm->last_point, 0, sizeof(shm->last_point));
  for (ResultSlot& slot : shm->results) {
    slot = ResultSlot{};
  }
}

}  // namespace perennial::crashreal
