// The cross-process crash harness (DESIGN.md §13).
//
// A soak is a sequence of kill/recover rounds against REAL storage. Each
// round forks a workload child that runs the engine natively (no modeled
// scheduler) over PosixDisk / PosixFilesys, self-reports progress through a
// shared-memory page, and SIGKILLs itself at a seeded killswitch crossing;
// the parent then forks a fresh recovery child that runs the engine's
// Recover and dumps the surviving state, which the parent validates against
// the same atomic spec the refinement checker uses (fold of the completed
// ops, bracketing the one possibly-in-flight op).
//
// Two regimes (posix_disk.h):
//  * "kill" — plain process death. The kernel page cache survives, so no
//    data is lost; this validates the recovery path against arbitrary
//    crash points, not durability.
//  * "powerfail" — additionally discards what a power cut could discard:
//    TxnLog runs over a write-back PosixDisk whose cache dies with the
//    child; Mailboat's directory tree is pruned by the journal projection
//    (projection.h). The write-barrier and dir-fsync bugs are only
//    observable here.
//
// On divergence the parent classifies it by cross-running an equivalent
// small workload under the MODELED engine (GooseFs / FaultyDisk) with the
// same mutations:
//  * the model also violates its spec  -> "implementation-bug"
//  * the model is clean               -> "model-too-weak" (real storage
//    exhibits a crash behavior the model does not capture)
// and a periodic probe on clean rounds reports "model-too-strong" when the
// model flags a violation real storage never exhibits. Every divergence is
// persisted as a pcc-crashreal trace (trace.h) replayable with
// `bench_crashreal --replay <file>`.
#ifndef PERENNIAL_SRC_CRASHREAL_RUNNER_H_
#define PERENNIAL_SRC_CRASHREAL_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/crashreal/trace.h"
#include "src/mailboat/mailboat.h"
#include "src/systems/txnlog/txn_log.h"

namespace perennial::crashreal {

struct CrashRealConfig {
  std::string system = "txnlog";     // "txnlog" | "mailboat"
  std::string regime = "powerfail";  // "kill" | "powerfail"
  uint64_t seed = 1;
  uint64_t rounds = 200;
  uint64_t ops_per_round = 6;

  // TxnLog shape (kept small so the model cross-run stays tractable).
  uint64_t num_addrs = 6;
  uint64_t log_capacity = 4;
  systems::TxnLog::Mutations txn_mutations;

  // Mailboat shape.
  uint64_t num_users = 3;
  bool sync_on_deliver = true;
  bool fsync_dirs = true;
  mailboat::Mailboat::Mutations mail_mutations;

  // Scratch directory for the disk image / mail tree / journal; created if
  // missing, REUSED if present (pass a fresh one per soak).
  std::string workdir;
  // Where divergence traces land ("" = workdir).
  std::string artifact_dir;

  // Classify divergences via the modeled engine (slower per divergence).
  bool classify = true;
  // Every Nth clean round, also cross-run the model and report
  // "model-too-strong" if it violates where real storage did not (0 = off).
  uint64_t cross_check_every = 0;

  // Names of the enabled mutations (bench --mutate spelling), recorded in
  // trace artifacts so replay can rebuild this config.
  std::vector<std::string> mutation_names;
};

// Applies one --mutate flag by name; returns false for an unknown name.
// Names: no_write_barrier, header_before_records, truncate_before_apply,
// deliver_in_place, recovery_deletes_mail, pickup_512_loop,
// no_sync_on_deliver, no_dir_fsync.
bool ApplyMutationName(const std::string& name, CrashRealConfig* config);

// Rebuilds the soak configuration a trace artifact was recorded under.
CrashRealConfig ConfigFromTrace(const CrashTrace& trace, const std::string& workdir);

struct Divergence {
  uint64_t round = 0;
  uint64_t kill_at = 0;
  std::string classification;  // implementation-bug | model-too-weak | model-too-strong
  std::string detail;
  std::string trace_path;  // saved artifact ("" if saving failed)
};

struct SoakSummary {
  uint64_t rounds = 0;      // rounds executed
  uint64_t killed = 0;      // rounds where the child died at its kill point
  uint64_t clean = 0;       // rounds the child finished (profile + overshoot)
  uint64_t hook_crossings = 0;  // total killswitch crossings observed
  std::vector<Divergence> divergences;
  bool ok() const { return divergences.empty(); }
};

// Runs the soak. A non-ok status is a HARNESS failure (fork/waitpid/IO
// trouble), not a divergence — divergences are data, in the summary.
Result<SoakSummary> RunSoak(const CrashRealConfig& config);

// Replays a trace artifact: re-runs the soak (everything is seeded) up to
// and including the diverging round. Sets *reproduced when a divergence
// with the trace's classification occurred at the trace's round.
Result<SoakSummary> ReplayTrace(const CrashRealConfig& config, const CrashTrace& trace,
                                bool* reproduced);

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_RUNNER_H_
