// Shared-memory handshake between the crashreal parent and its children.
//
// One RoundShm page is mmap'd MAP_SHARED|MAP_ANONYMOUS before each fork, so
// a SIGKILLed child leaves behind an exact record of how far it got: ops
// started/completed, killswitch hook crossings, and the last named hook
// point it passed. The recovery child reuses the same page to dump the
// recovered state (one ResultSlot per address / surviving message) for the
// parent to validate against the spec's allowed post-crash states.
//
// Everything is lock-free atomics or plain bytes written single-threadedly
// by the current child; the parent only reads after waitpid().
#ifndef PERENNIAL_SRC_CRASHREAL_SHM_H_
#define PERENNIAL_SRC_CRASHREAL_SHM_H_

#include <atomic>
#include <cstdint>

namespace perennial::crashreal {

// txnlog: {addr, value, 0, 0} per address.
// mailboat: {user, round, op, flags} per surviving message.
struct ResultSlot {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
};

// ResultSlot::d flags for mailboat dumps.
inline constexpr uint64_t kMsgFull = 1;      // contents match the workload exactly
inline constexpr uint64_t kMsgCorrupt = 2;   // tag parsed but contents wrong/partial
inline constexpr uint64_t kMsgUnparsed = 4;  // contents match no workload op

enum class ChildPhase : int {
  kInit = 0,
  kWorkloadRunning = 1,
  kWorkloadDone = 2,
  kRecoveryRunning = 10,
  kRecoveryDone = 11,
};

inline constexpr uint64_t kMaxResults = 512;

struct RoundShm {
  std::atomic<uint64_t> ops_started{0};
  std::atomic<uint64_t> ops_done{0};
  std::atomic<uint64_t> hooks_crossed{0};
  std::atomic<int> phase{0};
  char last_point[48] = {};
  std::atomic<uint64_t> result_count{0};
  // Recovery-side extra facts (mailboat: spool entries left after Recover).
  std::atomic<uint64_t> spool_leftover{0};
  ResultSlot results[kMaxResults];
};

static_assert(std::atomic<uint64_t>::is_always_lock_free, "shm counters must be lock-free");
static_assert(std::atomic<int>::is_always_lock_free, "shm phase must be lock-free");

// mmap/munmap helpers (MAP_SHARED | MAP_ANONYMOUS, zeroed).
RoundShm* MapRoundShm();
void UnmapRoundShm(RoundShm* shm);
// Reset between rounds (parent side, no children alive).
void ResetRoundShm(RoundShm* shm);

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_SHM_H_
