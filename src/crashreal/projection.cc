#include "src/crashreal/projection.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace perennial::crashreal {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Failed(what + ": " + std::strerror(errno));
}

struct FileKey {
  std::string dir;
  std::string name;
  auto operator<=>(const FileKey&) const = default;
};

}  // namespace

Result<DirListing> ListDirs(const std::string& root, const std::vector<std::string>& dirs) {
  DirListing out;
  for (const std::string& dir : dirs) {
    std::string path = root + "/" + dir;
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) {
      return ErrnoStatus("opendir " + path);
    }
    auto& names = out[dir];
    while (struct dirent* ent = ::readdir(d)) {
      std::string name = ent->d_name;
      if (name == "." || name == "..") {
        continue;
      }
      names.insert(std::move(name));
    }
    ::closedir(d);
  }
  return out;
}

Result<DirListing> ApplyPowerFailProjection(const std::string& root,
                                            const std::string& journal_path,
                                            const std::vector<std::string>& dirs,
                                            const DirListing& base) {
  // Pass 1: replay the journal into the durability model.
  //   durable  — entries a power cut must keep (base + dirsynced pendings)
  //   pending  — entries created/linked but whose directory is not yet synced
  //   synced_len — last successful file-fsync length of created-this-round
  //                files (absent = never synced = truncate to 0)
  DirListing durable = base;
  DirListing pending;
  std::map<FileKey, uint64_t> synced_len;
  std::set<FileKey> created_this_round;

  std::ifstream in(journal_path);
  if (!in) {
    return Status::Failed("cannot read journal " + journal_path);
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;
    if (verb == "create") {
      std::string dir, name;
      ls >> dir >> name;
      pending[dir].insert(name);
      created_this_round.insert({dir, name});
    } else if (verb == "create-fail") {
      std::string dir, name;
      ls >> dir >> name;
      pending[dir].erase(name);
      created_this_round.erase({dir, name});
    } else if (verb == "link") {
      std::string sd, sn, dd, dn;
      ls >> sd >> sn >> dd >> dn;
      pending[dd].insert(dn);
      // The destination shares the source inode: when the source was
      // created this round its durable length is whatever the source had
      // fsynced (0 if unsynced). A pre-round source is fully durable — the
      // new *entry* still needs its dirsync, but the data needs no
      // truncation, so the destination is not marked created-this-round.
      if (created_this_round.count({sd, sn}) != 0) {
        created_this_round.insert({dd, dn});
        auto it = synced_len.find({sd, sn});
        synced_len[{dd, dn}] = it != synced_len.end() ? it->second : 0;
      }
    } else if (verb == "link-fail") {
      std::string sd, sn, dd, dn;
      ls >> sd >> sn >> dd >> dn;
      pending[dd].erase(dn);
      created_this_round.erase({dd, dn});
      synced_len.erase({dd, dn});
    } else if (verb == "delete") {
      // Applied immediately, from both sets (see header: no resurrection).
      std::string dir, name;
      ls >> dir >> name;
      durable[dir].erase(name);
      pending[dir].erase(name);
    } else if (verb == "sync") {
      std::string dir, name;
      uint64_t len = 0;
      ls >> dir >> name >> len;
      synced_len[{dir, name}] = len;
    } else if (verb == "dirsync") {
      std::string dir;
      ls >> dir;
      auto it = pending.find(dir);
      if (it != pending.end()) {
        durable[dir].insert(it->second.begin(), it->second.end());
        it->second.clear();
      }
    } else if (!verb.empty()) {
      return Status::Failed("journal: unknown verb '" + verb + "' in: " + line);
    }
  }

  // Pass 2: materialize — prune live entries outside the durable set and
  // truncate created-this-round survivors to their synced length.
  Result<DirListing> live = ListDirs(root, dirs);
  if (!live.ok()) {
    return live.status();
  }
  DirListing projected;
  for (const std::string& dir : dirs) {
    const auto& names = live.value()[dir];
    const auto& keep = durable[dir];
    for (const std::string& name : names) {
      std::string path = root + "/" + dir + "/" + name;
      if (keep.count(name) == 0) {
        if (::unlink(path.c_str()) != 0) {
          return ErrnoStatus("projection unlink " + path);
        }
        continue;
      }
      if (created_this_round.count({dir, name}) != 0) {
        auto it = synced_len.find({dir, name});
        uint64_t len = it != synced_len.end() ? it->second : 0;
        if (::truncate(path.c_str(), static_cast<off_t>(len)) != 0) {
          return ErrnoStatus("projection truncate " + path);
        }
      }
      projected[dir].insert(name);
    }
    // Entries in `keep` but not live were deleted by the child after their
    // dirsync — that unlink is durable-immediately too, nothing to do.
    projected.try_emplace(dir);
  }
  return projected;
}

}  // namespace perennial::crashreal
