// The killswitch: deterministic self-SIGKILL at instrumented syscall
// boundaries (DESIGN.md §13).
//
// A SIGKILL sent by the parent at a wall-clock moment is not reproducible —
// the same seed would die at a different syscall every run. Instead the
// child counts its own crossings of named hook points (PosixDisk and
// PosixFilesys fire them between pwrites, before/after fsync, around
// directory-entry syscalls) and raises SIGKILL on itself the instant the
// armed crossing count is reached. The crossing count is mirrored into the
// shared-memory page continuously, so the parent knows exactly where death
// struck; SIGKILL cannot be caught, so there is no cleanup path to distort
// the surviving state.
//
// kill_at == 0 arms in profile mode: crossings are counted and mirrored but
// the process never dies (used to learn a round's hook count, and to run
// clean validation rounds).
//
// The switch is process-global (hooks reach it from deep inside the disk
// and fs layers) and is only meaningful in the single-threaded child.
#ifndef PERENNIAL_SRC_CRASHREAL_KILLSWITCH_H_
#define PERENNIAL_SRC_CRASHREAL_KILLSWITCH_H_

#include <cstdint>

#include "src/crashreal/shm.h"

namespace perennial::crashreal {

// Child side, immediately after fork: start counting crossings, die at
// crossing `kill_at` (0 = never).
void ArmKillSwitch(RoundShm* shm, uint64_t kill_at);

// Makes Cross() a no-op again (parent side safety; children just exit).
void DisarmKillSwitch();

// A hook crossing. No-op when unarmed.
void Cross(const char* point);

// Crossings since ArmKillSwitch (child-local mirror of shm->hooks_crossed).
uint64_t Crossings();

}  // namespace perennial::crashreal

#endif  // PERENNIAL_SRC_CRASHREAL_KILLSWITCH_H_
