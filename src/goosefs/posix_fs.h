// Real-OS implementation of the Goose file-system interface.
//
// Used by benchmarks and the example mail server (run it on tmpfs, e.g.
// /dev/shm, to reproduce the paper's Figure 11 setup). Never used by the
// checker — it has no modeled crash semantics.
//
// Two lookup modes reproduce the paper's performance comparison (§9.3):
//  * Cached dir fds (Mailboat): each directory's fd is opened once and all
//    lookups are openat() relative to it — the optimization the paper
//    credits for part of Mailboat's single-core win.
//  * Full paths (GoMail/CMAIL style): every operation builds an absolute
//    path and walks it from the root.
#ifndef PERENNIAL_SRC_GOOSEFS_POSIX_FS_H_
#define PERENNIAL_SRC_GOOSEFS_POSIX_FS_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fault/syscall_fault.h"
#include "src/goosefs/filesys.h"

namespace perennial::goosefs {

// Pluggable fsync implementation. PosixFilesys routes every durability
// point — Sync(fd) on file fds and the internal directory fsyncs — through
// this seam when one is installed, so a group-commit layer (e.g.
// netserv::GroupCommitter) can coalesce the fsyncs of many concurrent
// sessions into one batch barrier. Fsync must be callable from any thread
// and must not return until the fd's dirty state is durable.
class Fsyncer {
 public:
  virtual ~Fsyncer() = default;
  virtual Status Fsync(int fd) = 0;
  // Lifecycle hints for sticky-failure tracking (Linux drops dirty pages
  // when an fsync fails, so a failed barrier must poison every fd that was
  // dirty at the time — see netserv::GroupCommitter). OnDirty fires after a
  // successful write made `fd` dirty; OnClose fires when `fd` is being
  // closed (a fresh open of the same file starts clean). Default no-ops.
  virtual void OnDirty(int fd) {}
  virtual void OnClose(int fd) {}
};

class PosixFilesys : public Filesys {
 public:
  struct Options {
    // Cache one fd per directory and do relative lookups (Mailboat mode).
    bool cache_dir_fds = true;
    // fsync the parent directory after Create/Link/Delete so the entry
    // itself is durable — POSIX only durably records a directory entry
    // once the directory is synced; fsync of the file data alone is not
    // enough. Without this, a crash after Deliver's Link+Sync can lose
    // the message despite its bytes being on disk (the metadata-
    // durability gap the crash harness exists to catch). Default on;
    // turn off only to reproduce the bug.
    bool fsync_dirs = true;
    // Crash-harness kill points, fired at syscall boundaries inside
    // Create/Link/Delete ("create.entry", "create.dirsync", "link.entry",
    // "link.dirsync", "delete.entry", "delete.dirsync"). The string
    // argument is the directory involved.
    std::function<void(const char* point, const std::string& dir)> hook;
    // When set, all durability fsyncs (file Sync and the directory fsyncs
    // inside Create/Link/Delete) go through this instead of ::fsync —
    // the group-commit hook. EnsureDirs's one-off root fsync stays direct
    // (setup path, not a hot-path durability point). Not owned.
    Fsyncer* fsyncer = nullptr;
    // Directories whose *entry* existence is reconciled by the caller's
    // recovery procedure rather than by a barrier before acknowledgment:
    // Create and Delete in these dirs skip the parent-directory fsync (and
    // its .dirsync crossing — same observable semantics as fsync_dirs=false
    // for exactly these dirs). Link's destination dirsync — the
    // acked ⇒ durable point — is never skipped. Mailboat's netserv harness
    // passes {"spool"}: a spool entry lost in a crash was never acked
    // (pre-link crash drops the whole delivery), and a spool entry
    // resurrected by a crash (post-ack unlink undone) is removed by
    // Recover's spool sweep. Cuts a Deliver from 4 durability barriers to
    // 2 without weakening any acked guarantee.
    std::vector<std::string> recovery_reconciled_dirs;
    // Syscall table for the data path (openat/write/pread/fsync/linkat/
    // unlinkat). Defaults to the raw syscalls; tests and fault soaks pass a
    // fault::FaultInjectingSyscalls to make the disk hostile. Setup-path
    // calls (EnsureDirs, directory-fd opens) stay raw: the fault envelope
    // is "a serving system on a degrading disk", not "mkdir fails at
    // boot". Not owned.
    fault::FsSyscalls* sys = nullptr;
  };

  // `root` must exist; directories are created beneath it on EnsureDirs.
  PosixFilesys(std::string root, Options options);
  ~PosixFilesys() override;

  PosixFilesys(const PosixFilesys&) = delete;
  PosixFilesys& operator=(const PosixFilesys&) = delete;

  // Setup (not part of the modeled API): create the fixed directory layout,
  // durably (mkdir + parent fsync when fsync_dirs). With `clear_contents`
  // any leftovers are removed (benchmark reset); a recovered run passes
  // false so surviving state — including a killed child's temp files — is
  // kept. Idempotent either way: existing directories are not an error.
  Status EnsureDirs(const std::vector<std::string>& dirs, bool clear_contents = true);
  // Removes every file in `dir`. Unlink failures propagate (ENOENT from a
  // concurrent or prior removal is tolerated).
  Status ClearDir(const std::string& dir);

  proc::Task<Result<Fd>> Create(const std::string& dir, const std::string& name) override;
  proc::Task<Result<Fd>> Open(const std::string& dir, const std::string& name) override;
  proc::Task<Status> Append(Fd fd, const Bytes& data) override;
  proc::Task<Result<Bytes>> ReadAt(Fd fd, uint64_t off, uint64_t count) override;
  proc::Task<Status> Sync(Fd fd) override;
  proc::Task<Status> Close(Fd fd) override;
  proc::Task<Result<std::vector<std::string>>> List(const std::string& dir) override;
  proc::Task<Result<bool>> Link(const std::string& src_dir, const std::string& src_name,
                                const std::string& dst_dir, const std::string& dst_name) override;
  proc::Task<Status> Delete(const std::string& dir, const std::string& name) override;

 private:
  // Returns a directory fd for `dir`: the cached one, or freshly opened
  // (caller must close when `opened` is set). -1 on failure. Once
  // EnsureDirs has sealed the cache, hits are a lock-free lookup in an
  // immutable map; misses fall back to a fresh open (correct, just slow).
  int DirFd(const std::string& dir, bool* opened);
  std::string FullPath(const std::string& dir, const std::string& name) const;
  // As FullPath, but into a reused thread-local buffer (uncached-mode ops
  // build a full path per call; the arena removes the per-op allocation).
  const char* ScratchPath(const std::string& dir, const std::string& name) const;
  // One durability fsync: routed through Options::fsyncer when installed,
  // else a direct EINTR-retrying ::fsync.
  Status DoFsync(int fd, const char* what);
  // fsync the directory itself (entry durability); no-op unless fsync_dirs.
  Status SyncDir(const std::string& dir);
  // True when `dir` is in Options::recovery_reconciled_dirs (entry
  // dirsyncs for Create/Delete are skipped there).
  bool EntryReconciled(const std::string& dir) const;
  fault::FsSyscalls& Sys() const {
    return options_.sys != nullptr ? *options_.sys : *fault::RealFsSyscalls();
  }
  void Cross(const char* point, const std::string& dir) {
    if (options_.hook) {
      options_.hook(point, dir);
    }
  }

  std::string root_;
  Options options_;
  std::mutex mu_;  // guards dir_fds_ until sealed_
  std::unordered_map<std::string, int> dir_fds_;
  // Set (with release) after EnsureDirs pre-opened every layout dir; from
  // then on dir_fds_ is immutable and read without the lock.
  std::atomic<bool> sealed_{false};
};

}  // namespace perennial::goosefs

#endif  // PERENNIAL_SRC_GOOSEFS_POSIX_FS_H_
