// Real-OS implementation of the Goose file-system interface.
//
// Used by benchmarks and the example mail server (run it on tmpfs, e.g.
// /dev/shm, to reproduce the paper's Figure 11 setup). Never used by the
// checker — it has no modeled crash semantics.
//
// Two lookup modes reproduce the paper's performance comparison (§9.3):
//  * Cached dir fds (Mailboat): each directory's fd is opened once and all
//    lookups are openat() relative to it — the optimization the paper
//    credits for part of Mailboat's single-core win.
//  * Full paths (GoMail/CMAIL style): every operation builds an absolute
//    path and walks it from the root.
#ifndef PERENNIAL_SRC_GOOSEFS_POSIX_FS_H_
#define PERENNIAL_SRC_GOOSEFS_POSIX_FS_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/goosefs/filesys.h"

namespace perennial::goosefs {

class PosixFilesys : public Filesys {
 public:
  struct Options {
    // Cache one fd per directory and do relative lookups (Mailboat mode).
    bool cache_dir_fds = true;
  };

  // `root` must exist; directories are created beneath it on EnsureDirs.
  PosixFilesys(std::string root, Options options);
  ~PosixFilesys() override;

  PosixFilesys(const PosixFilesys&) = delete;
  PosixFilesys& operator=(const PosixFilesys&) = delete;

  // Setup (not part of the modeled API): create the fixed directory layout
  // and remove any leftover contents.
  Status EnsureDirs(const std::vector<std::string>& dirs);
  // Removes every file in `dir` (benchmark reset between runs).
  Status ClearDir(const std::string& dir);

  proc::Task<Result<Fd>> Create(const std::string& dir, const std::string& name) override;
  proc::Task<Result<Fd>> Open(const std::string& dir, const std::string& name) override;
  proc::Task<Status> Append(Fd fd, const Bytes& data) override;
  proc::Task<Result<Bytes>> ReadAt(Fd fd, uint64_t off, uint64_t count) override;
  proc::Task<Status> Sync(Fd fd) override;
  proc::Task<Status> Close(Fd fd) override;
  proc::Task<Result<std::vector<std::string>>> List(const std::string& dir) override;
  proc::Task<bool> Link(const std::string& src_dir, const std::string& src_name,
                        const std::string& dst_dir, const std::string& dst_name) override;
  proc::Task<Status> Delete(const std::string& dir, const std::string& name) override;

 private:
  // Returns a directory fd for `dir`: the cached one, or freshly opened
  // (caller must close when `opened` is set). -1 on failure.
  int DirFd(const std::string& dir, bool* opened);
  std::string FullPath(const std::string& dir, const std::string& name) const;

  std::string root_;
  Options options_;
  std::mutex mu_;  // guards dir_fds_
  std::map<std::string, int> dir_fds_;
};

}  // namespace perennial::goosefs

#endif  // PERENNIAL_SRC_GOOSEFS_POSIX_FS_H_
