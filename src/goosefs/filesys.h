// The Goose file-system interface (§6.2).
//
// A deliberately low-level POSIX subset: a fixed set of directories (no
// mkdir/rename), files addressed as (directory, name), hard links, and file
// descriptors in one of two modes (read, append) — exactly the surface the
// paper's Goose library provides and Mailboat is written against.
//
// Two implementations exist:
//  * goosefs::GooseFs — the modeled semantics with the paper's crash model
//    (data durable, fds lost), used by the refinement checker.
//  * goosefs::PosixFilesys — a real-OS backend over *at() syscalls, used by
//    the benchmarks (run it on tmpfs to reproduce Figure 11).
#ifndef PERENNIAL_SRC_GOOSEFS_FILESYS_H_
#define PERENNIAL_SRC_GOOSEFS_FILESYS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/proc/task.h"

namespace perennial::goosefs {

using Fd = int64_t;
using Bytes = std::vector<uint8_t>;

Bytes BytesOfString(const std::string& s);
std::string StringOfBytes(const Bytes& b);

class Filesys {
 public:
  virtual ~Filesys() = default;

  // Creates `name` in `dir` exclusively and opens it in append mode.
  // kAlreadyExists if the name is taken; kNotFound if `dir` doesn't exist.
  virtual proc::Task<Result<Fd>> Create(const std::string& dir, const std::string& name) = 0;

  // Opens an existing file for reading. kNotFound if absent.
  virtual proc::Task<Result<Fd>> Open(const std::string& dir, const std::string& name) = 0;

  // Appends to a file opened with Create. Misuse (bad fd, wrong mode) is a
  // program bug: the modeled backend raises UbViolation.
  virtual proc::Task<Status> Append(Fd fd, const Bytes& data) = 0;

  // Reads up to `count` bytes at `off` from a file opened with Open; a
  // short (or empty) result means EOF was reached.
  virtual proc::Task<Result<Bytes>> ReadAt(Fd fd, uint64_t off, uint64_t count) = 0;

  // Forces buffered data of this file to durable storage (fsync). On a
  // backend without deferred durability this is a no-op (§6.2's model is
  // synchronous); with BufferedGooseFs semantics, data appended since the
  // last Sync is volatile until this returns.
  virtual proc::Task<Status> Sync(Fd fd) = 0;

  virtual proc::Task<Status> Close(Fd fd) = 0;

  // Lists file names in `dir` (sorted, for determinism).
  virtual proc::Task<Result<std::vector<std::string>>> List(const std::string& dir) = 0;

  // Atomically links (src_dir, src_name)'s inode as (dst_dir, dst_name).
  // Returns false if the destination already exists (the shadow-copy
  // install primitive Mailboat relies on); a non-ok status is an I/O
  // failure — the entry may exist but its durability is unknown, so the
  // caller must treat the delivery as failed (and may need to unlink).
  virtual proc::Task<Result<bool>> Link(const std::string& src_dir, const std::string& src_name,
                                        const std::string& dst_dir,
                                        const std::string& dst_name) = 0;

  // Unlinks a name. kNotFound if absent.
  virtual proc::Task<Status> Delete(const std::string& dir, const std::string& name) = 0;
};

}  // namespace perennial::goosefs

#endif  // PERENNIAL_SRC_GOOSEFS_FILESYS_H_
