#include "src/goosefs/goosefs.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/proc/footprint.h"

namespace perennial::goosefs {

Bytes BytesOfString(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string StringOfBytes(const Bytes& b) { return std::string(b.begin(), b.end()); }

GooseFs::GooseFs(goose::World* world, std::vector<std::string> dirs, Options options)
    : world_(world), options_(options), res_seed_(world->NextResourceId()) {
  for (std::string& d : dirs) {
    dirs_[std::move(d)] = {};
  }
  world_->Register(this);
}

void GooseFs::BeginOpFootprint() const {
  if (options_.opaque_footprints) {
    proc::RecordOpaque();
  }
}

void GooseFs::Rec(uint64_t resource, bool write) const {
  if (!options_.opaque_footprints) {
    proc::RecordAccess(resource, write);
  }
}

uint64_t GooseFs::AllocRes() const { return proc::MixResource(proc::kResFsAlloc, res_seed_); }

uint64_t GooseFs::DirRes(const std::string& dir) const {
  return proc::MixResourceKey(proc::kResFsDir, res_seed_, dir);
}

uint64_t GooseFs::EntryRes(const std::string& dir, const std::string& name) const {
  // Entry ids hang off the directory id so "a/bc" and "ab/c" cannot alias.
  return proc::MixResourceKey(proc::kResFsEntry, DirRes(dir), name);
}

uint64_t GooseFs::InodeRes(uint64_t ino) const {
  return proc::MixResource(proc::kResFsInode, res_seed_, ino);
}

uint64_t GooseFs::TailRes(uint64_t ino) const {
  return proc::MixResource(proc::kResFsTail, res_seed_, ino);
}

uint64_t GooseFs::FdRes(Fd fd) const { return proc::MixResource(proc::kResFsFd, res_seed_, fd); }

proc::Task<Result<Fd>> GooseFs::Create(const std::string& dir, const std::string& name) {
  co_await proc::Yield();
  BeginOpFootprint();
  // Writes even on failure paths: a failed create still *read* the entry,
  // and recording the write superset is sound (footprint.h header comment).
  Rec(DirRes(dir), /*write=*/true);
  Rec(EntryRes(dir, name), /*write=*/true);
  auto dir_it = dirs_.find(dir);
  if (dir_it == dirs_.end()) {
    co_return Status::NotFound("no such directory: " + dir);
  }
  auto [it, inserted] = dir_it->second.try_emplace(name, next_ino_);
  if (!inserted) {
    co_return Status::AlreadyExists(dir + "/" + name);
  }
  // The counters make any two allocating ops order-dependent (the numbers
  // they hand out differ), exactly like the heap's allocator resource.
  Rec(AllocRes(), /*write=*/true);
  uint64_t ino = next_ino_++;
  Rec(InodeRes(ino), /*write=*/true);
  Inode& inode = inodes_[ino];
  inode.nlink = 1;
  inode.open_fds = 1;
  Fd fd = next_fd_++;
  Rec(FdRes(fd), /*write=*/true);
  fds_[fd] = FdState{ino, Mode::kAppend};
  co_return fd;
}

proc::Task<Result<Fd>> GooseFs::Open(const std::string& dir, const std::string& name) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(EntryRes(dir, name), /*write=*/false);
  auto dir_it = dirs_.find(dir);
  if (dir_it == dirs_.end()) {
    co_return Status::NotFound("no such directory: " + dir);
  }
  auto name_it = dir_it->second.find(name);
  if (name_it == dir_it->second.end()) {
    co_return Status::NotFound(dir + "/" + name);
  }
  uint64_t ino = name_it->second;
  Rec(AllocRes(), /*write=*/true);
  Rec(InodeRes(ino), /*write=*/true);  // open_fds++ feeds the reclaim decision
  inodes_.at(ino).open_fds++;
  Fd fd = next_fd_++;
  Rec(FdRes(fd), /*write=*/true);
  fds_[fd] = FdState{ino, Mode::kRead};
  co_return fd;
}

proc::Task<Status> GooseFs::Append(Fd fd, const Bytes& data) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(FdRes(fd), /*write=*/false);
  FdState& state = ResolveFd(fd, "Append");
  if (state.mode != Mode::kAppend) {
    RaiseUb("Append on a read-mode fd");
  }
  Rec(InodeRes(state.ino), /*write=*/true);
  Rec(TailRes(state.ino), /*write=*/true);  // superset: deferred mode leaves it
  Inode& inode = inodes_.at(state.ino);
  inode.data.insert(inode.data.end(), data.begin(), data.end());
  if (!options_.deferred_durability) {
    inode.synced_len = inode.data.size();  // synchronous model: instantly durable
  }
  co_return Status::Ok();
}

proc::Task<Result<Bytes>> GooseFs::ReadAt(Fd fd, uint64_t off, uint64_t count) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(FdRes(fd), /*write=*/false);
  FdState& state = ResolveFd(fd, "ReadAt");
  if (state.mode != Mode::kRead) {
    RaiseUb("ReadAt on an append-mode fd");
  }
  Rec(InodeRes(state.ino), /*write=*/false);
  const Bytes& contents = inodes_.at(state.ino).data;
  if (off >= contents.size()) {
    co_return Bytes{};
  }
  uint64_t end = std::min<uint64_t>(off + count, contents.size());
  co_return Bytes(contents.begin() + static_cast<long>(off), contents.begin() + static_cast<long>(end));
}

proc::Task<Status> GooseFs::Sync(Fd fd) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(FdRes(fd), /*write=*/false);
  FdState& state = ResolveFd(fd, "Sync");
  Rec(InodeRes(state.ino), /*write=*/false);  // reads the current length
  Rec(TailRes(state.ino), /*write=*/true);
  Inode& inode = inodes_.at(state.ino);
  inode.synced_len = inode.data.size();
  co_return Status::Ok();
}

proc::Task<Status> GooseFs::Close(Fd fd) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(FdRes(fd), /*write=*/true);
  FdState& state = ResolveFd(fd, "Close");
  uint64_t ino = state.ino;
  Rec(InodeRes(ino), /*write=*/true);  // open_fds--, possibly reclaim
  fds_.erase(fd);
  Inode& inode = inodes_.at(ino);
  PCC_ENSURE(inode.open_fds > 0, "Close: fd refcount underflow");
  inode.open_fds--;
  MaybeReclaim(ino);
  co_return Status::Ok();
}

proc::Task<Result<std::vector<std::string>>> GooseFs::List(const std::string& dir) {
  co_await proc::Yield();
  BeginOpFootprint();
  // Membership aggregate: every op that adds or removes a name in `dir`
  // writes DirRes(dir), so List conflicts with exactly those.
  Rec(DirRes(dir), /*write=*/false);
  auto dir_it = dirs_.find(dir);
  if (dir_it == dirs_.end()) {
    co_return Status::NotFound("no such directory: " + dir);
  }
  std::vector<std::string> names;
  names.reserve(dir_it->second.size());
  for (const auto& [name, ino] : dir_it->second) {
    names.push_back(name);
  }
  co_return names;  // std::map iterates sorted
}

proc::Task<Result<bool>> GooseFs::Link(const std::string& src_dir, const std::string& src_name,
                                       const std::string& dst_dir, const std::string& dst_name) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(EntryRes(src_dir, src_name), /*write=*/false);
  Rec(DirRes(dst_dir), /*write=*/true);
  Rec(EntryRes(dst_dir, dst_name), /*write=*/true);
  auto src_dir_it = dirs_.find(src_dir);
  if (src_dir_it == dirs_.end()) {
    co_return false;
  }
  auto src_it = src_dir_it->second.find(src_name);
  if (src_it == src_dir_it->second.end()) {
    co_return false;
  }
  auto dst_dir_it = dirs_.find(dst_dir);
  if (dst_dir_it == dirs_.end()) {
    co_return false;
  }
  auto [dst_it, inserted] = dst_dir_it->second.try_emplace(dst_name, src_it->second);
  if (!inserted) {
    co_return false;
  }
  Rec(InodeRes(src_it->second), /*write=*/true);  // nlink++
  inodes_.at(src_it->second).nlink++;
  co_return true;
}

proc::Task<Status> GooseFs::Delete(const std::string& dir, const std::string& name) {
  co_await proc::Yield();
  BeginOpFootprint();
  Rec(DirRes(dir), /*write=*/true);
  Rec(EntryRes(dir, name), /*write=*/true);
  auto dir_it = dirs_.find(dir);
  if (dir_it == dirs_.end()) {
    co_return Status::NotFound("no such directory: " + dir);
  }
  auto name_it = dir_it->second.find(name);
  if (name_it == dir_it->second.end()) {
    co_return Status::NotFound(dir + "/" + name);
  }
  uint64_t ino = name_it->second;
  Rec(InodeRes(ino), /*write=*/true);  // nlink--, possibly reclaim
  dir_it->second.erase(name_it);
  Inode& inode = inodes_.at(ino);
  PCC_ENSURE(inode.nlink > 0, "Delete: nlink underflow");
  inode.nlink--;
  MaybeReclaim(ino);
  co_return Status::Ok();
}

void GooseFs::OnCrash() {
  // Deferred durability: unsynced data dies with the page cache — each
  // file truncates to its last-synced prefix. An armed kUnsyncedTail fault
  // instead leaves roughly half of one file's unsynced tail behind: the
  // kernel wrote back more than Sync() promised, which POSIX permits.
  for (auto& [ino, inode] : inodes_) {
    if (inode.data.size() > inode.synced_len) {
      uint64_t keep = inode.synced_len;
      if (options_.faults != nullptr &&
          options_.faults->Consume(fault::FaultKind::kUnsyncedTail, static_cast<int>(ino))) {
        uint64_t tail = inode.data.size() - inode.synced_len;
        keep += (tail + 1) / 2;
      }
      inode.data.resize(keep);
      inode.synced_len = keep;  // what survived the crash is durable now
    }
  }
  // File descriptors are volatile (§6.2): all lost. Their inode references
  // vanish with them, so orphaned inodes (created-but-never-linked spool
  // data) are reclaimed by the kernel model.
  for (auto& [fd, state] : fds_) {
    Inode& inode = inodes_.at(state.ino);
    PCC_ENSURE(inode.open_fds > 0, "OnCrash: fd refcount underflow");
    inode.open_fds--;
  }
  fds_.clear();
  for (auto it = inodes_.begin(); it != inodes_.end();) {
    if (it->second.nlink == 0 && it->second.open_fds == 0) {
      it = inodes_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::string> GooseFs::PeekNames(const std::string& dir) const {
  auto it = dirs_.find(dir);
  PCC_ENSURE(it != dirs_.end(), "PeekNames: no such directory " + dir);
  std::vector<std::string> names;
  for (const auto& [name, ino] : it->second) {
    names.push_back(name);
  }
  return names;
}

std::optional<Bytes> GooseFs::PeekFile(const std::string& dir, const std::string& name) const {
  auto dir_it = dirs_.find(dir);
  if (dir_it == dirs_.end()) {
    return std::nullopt;
  }
  auto it = dir_it->second.find(name);
  if (it == dir_it->second.end()) {
    return std::nullopt;
  }
  return inodes_.at(it->second).data;
}

std::optional<Bytes> GooseFs::PeekDurableFile(const std::string& dir,
                                              const std::string& name) const {
  std::optional<Bytes> full = PeekFile(dir, name);
  if (!full.has_value()) {
    return std::nullopt;
  }
  auto dir_it = dirs_.find(dir);
  const Inode& inode = inodes_.at(dir_it->second.at(name));
  full->resize(inode.synced_len);
  return full;
}

std::string GooseFs::DurableFingerprint() const {
  std::string out;
  for (const auto& [dir, entries] : dirs_) {
    out += dir;
    out += '{';
    for (const auto& [name, ino] : entries) {
      out += name;
      out += '=';
      const Bytes& data = inodes_.at(ino).data;
      out.append(data.begin(), data.end());
      out += ';';
    }
    out += '}';
  }
  return out;
}

GooseFs::FdState& GooseFs::ResolveFd(Fd fd, const char* op) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    RaiseUb(std::string(op) + ": bad or stale file descriptor (fds do not survive crashes)");
  }
  return it->second;
}

void GooseFs::MaybeReclaim(uint64_t ino) {
  auto it = inodes_.find(ino);
  PCC_ENSURE(it != inodes_.end(), "MaybeReclaim: no such inode");
  if (it->second.nlink == 0 && it->second.open_fds == 0) {
    inodes_.erase(it);
  }
}

}  // namespace perennial::goosefs
