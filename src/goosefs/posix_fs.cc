#include "src/goosefs/posix_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/base/panic.h"

namespace perennial::goosefs {

namespace {

Status ErrnoStatus(const std::string& op, int err) {
  std::string msg = op + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(std::move(msg));
    case EEXIST:
      return Status::AlreadyExists(std::move(msg));
    default:
      return Status::Failed(std::move(msg));
  }
}

// EINTR-retry wrapper for syscalls returning -1/errno. A signal landing
// mid-call (the server hot path runs under profiling timers and a
// killswitch-armed crash harness) must not surface as a spurious session
// error. Open/link/unlink on regular files never partially complete, so a
// retry is always safe.
template <typename Fn>
int RetryEintr(Fn&& fn) {
  int rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace

PosixFilesys::PosixFilesys(std::string root, Options options)
    : root_(std::move(root)), options_(options) {}

PosixFilesys::~PosixFilesys() {
  for (auto& [dir, fd] : dir_fds_) {
    ::close(fd);
  }
}

Status PosixFilesys::EnsureDirs(const std::vector<std::string>& dirs, bool clear_contents) {
  bool made_any = false;
  for (const std::string& dir : dirs) {
    std::string path = root_ + "/" + dir;
    if (::mkdir(path.c_str(), 0755) != 0) {
      // Idempotent across recovered runs: an existing directory is fine;
      // any other mkdir failure propagates instead of being papered over.
      if (errno != EEXIST) {
        return ErrnoStatus("mkdir " + path, errno);
      }
    } else {
      made_any = true;
    }
    if (clear_contents) {
      Status s = ClearDir(dir);
      if (!s.ok()) {
        return s;
      }
    }
  }
  if (made_any && options_.fsync_dirs) {
    // The new entries live in root_; sync it so the layout itself is
    // durable before any files are created beneath it.
    int rfd = RetryEintr([&] { return ::open(root_.c_str(), O_DIRECTORY | O_RDONLY); });
    if (rfd < 0) {
      return ErrnoStatus("open root", errno);
    }
    int rc = RetryEintr([&] { return ::fsync(rfd); });
    int err = errno;
    ::close(rfd);
    if (rc != 0) {
      return ErrnoStatus("fsync root", err);
    }
  }
  return Status::Ok();
}

Status PosixFilesys::ClearDir(const std::string& dir) {
  std::string path = root_ + "/" + dir;
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) {
    return ErrnoStatus("opendir " + path, errno);
  }
  Status result = Status::Ok();
  while (struct dirent* entry = ::readdir(d)) {
    if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    std::string file = path + "/" + entry->d_name;
    if (RetryEintr([&] { return ::unlink(file.c_str()); }) != 0 && errno != ENOENT) {
      // Propagate the first failure (a directory, EPERM, ...) but keep
      // removing what we can; ENOENT just means someone beat us to it.
      if (result.ok()) {
        result = ErrnoStatus("unlink " + file, errno);
      }
    }
  }
  ::closedir(d);
  return result;
}

Status PosixFilesys::SyncDir(const std::string& dir) {
  if (!options_.fsync_dirs) {
    return Status::Ok();
  }
  bool opened = false;
  int dfd = DirFd(dir, &opened);
  if (dfd < 0) {
    return ErrnoStatus("open dir", errno);
  }
  Status s = DoFsync(dfd, "fsync dir");
  if (opened) {
    ::close(dfd);
  }
  return s;
}

Status PosixFilesys::DoFsync(int fd, const char* what) {
  if (options_.fsyncer != nullptr) {
    return options_.fsyncer->Fsync(fd);
  }
  if (RetryEintr([&] { return ::fsync(fd); }) != 0) {
    return ErrnoStatus(what, errno);
  }
  return Status::Ok();
}

int PosixFilesys::DirFd(const std::string& dir, bool* opened) {
  if (options_.cache_dir_fds) {
    *opened = false;
    std::scoped_lock lock(mu_);
    auto it = dir_fds_.find(dir);
    if (it != dir_fds_.end()) {
      return it->second;
    }
    std::string path = root_ + "/" + dir;
    int fd = RetryEintr([&] { return ::open(path.c_str(), O_DIRECTORY | O_RDONLY); });
    if (fd >= 0) {
      dir_fds_[dir] = fd;
    }
    return fd;
  }
  // Uncached mode (GoMail style): open the directory fresh each time, so
  // every operation pays a full path walk.
  *opened = true;
  std::string path = root_ + "/" + dir;
  return RetryEintr([&] { return ::open(path.c_str(), O_DIRECTORY | O_RDONLY); });
}

std::string PosixFilesys::FullPath(const std::string& dir, const std::string& name) const {
  return root_ + "/" + dir + "/" + name;
}

proc::Task<Result<Fd>> PosixFilesys::Create(const std::string& dir, const std::string& name) {
  int fd = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    fd = RetryEintr(
        [&] { return ::openat(dfd, name.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND, 0644); });
    if (opened) {
      ::close(dfd);
    }
  } else {
    fd = RetryEintr([&] {
      return ::open(FullPath(dir, name).c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND, 0644);
    });
  }
  if (fd < 0) {
    co_return ErrnoStatus("create", errno);
  }
  Cross("create.entry", dir);
  Status ds = SyncDir(dir);
  if (!ds.ok()) {
    ::close(fd);
    co_return ds;
  }
  // The .dirsync hook points mean "a directory fsync has landed" — observers
  // (crashreal's durability journal) treat the crossing itself as the
  // durability event, so it must not fire when fsync_dirs is off.
  if (options_.fsync_dirs) {
    Cross("create.dirsync", dir);
  }
  co_return static_cast<Fd>(fd);
}

proc::Task<Result<Fd>> PosixFilesys::Open(const std::string& dir, const std::string& name) {
  int fd = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    fd = RetryEintr([&] { return ::openat(dfd, name.c_str(), O_RDONLY); });
    if (opened) {
      ::close(dfd);
    }
  } else {
    fd = RetryEintr([&] { return ::open(FullPath(dir, name).c_str(), O_RDONLY); });
  }
  if (fd < 0) {
    co_return ErrnoStatus("open", errno);
  }
  co_return static_cast<Fd>(fd);
}

proc::Task<Status> PosixFilesys::Append(Fd fd, const Bytes& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(static_cast<int>(fd), data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      co_return ErrnoStatus("write", errno);
    }
    written += static_cast<size_t>(n);
  }
  co_return Status::Ok();
}

proc::Task<Result<Bytes>> PosixFilesys::ReadAt(Fd fd, uint64_t off, uint64_t count) {
  Bytes out(count);
  size_t total = 0;
  while (total < count) {
    ssize_t n = ::pread(static_cast<int>(fd), out.data() + total, count - total,
                        static_cast<off_t>(off + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      co_return ErrnoStatus("pread", errno);
    }
    if (n == 0) {
      break;  // EOF
    }
    total += static_cast<size_t>(n);
  }
  out.resize(total);
  co_return out;
}

proc::Task<Status> PosixFilesys::Sync(Fd fd) {
  co_return DoFsync(static_cast<int>(fd), "fsync");
}

proc::Task<Status> PosixFilesys::Close(Fd fd) {
  if (::close(static_cast<int>(fd)) != 0) {
    co_return ErrnoStatus("close", errno);
  }
  co_return Status::Ok();
}

proc::Task<Result<std::vector<std::string>>> PosixFilesys::List(const std::string& dir) {
  std::vector<std::string> names;
  bool opened = false;
  int dfd = DirFd(dir, &opened);
  if (dfd < 0) {
    co_return ErrnoStatus("open dir", errno);
  }
  // fdopendir takes ownership, so always hand it a duplicate.
  int dup_fd = RetryEintr([&] { return ::dup(dfd); });
  if (opened) {
    ::close(dfd);
  }
  if (dup_fd < 0) {
    co_return ErrnoStatus("dup", errno);
  }
  ::lseek(dup_fd, 0, SEEK_SET);
  DIR* d = ::fdopendir(dup_fd);
  if (d == nullptr) {
    ::close(dup_fd);
    co_return ErrnoStatus("fdopendir", errno);
  }
  while (struct dirent* entry = ::readdir(d)) {
    if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    names.emplace_back(entry->d_name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  co_return names;
}

proc::Task<bool> PosixFilesys::Link(const std::string& src_dir, const std::string& src_name,
                                    const std::string& dst_dir, const std::string& dst_name) {
  int rc = -1;
  if (options_.cache_dir_fds) {
    bool src_opened = false;
    bool dst_opened = false;
    int sfd = DirFd(src_dir, &src_opened);
    int dfd = DirFd(dst_dir, &dst_opened);
    if (sfd >= 0 && dfd >= 0) {
      rc = RetryEintr([&] { return ::linkat(sfd, src_name.c_str(), dfd, dst_name.c_str(), 0); });
    }
    if (src_opened && sfd >= 0) {
      ::close(sfd);
    }
    if (dst_opened && dfd >= 0) {
      ::close(dfd);
    }
  } else {
    rc = RetryEintr(
        [&] { return ::link(FullPath(src_dir, src_name).c_str(), FullPath(dst_dir, dst_name).c_str()); });
  }
  if (rc == 0) {
    Cross("link.entry", dst_dir);
    // The new entry is durable only once dst_dir itself is synced; Link's
    // boolean contract (false = name taken) can't carry an I/O error, and
    // a failed directory fsync means durability is unknowable — panic
    // rather than let the caller believe the link is crash-safe.
    Status ds = SyncDir(dst_dir);
    PCC_ENSURE(ds.ok(), "link: " + ds.ToString());
    if (options_.fsync_dirs) {
      Cross("link.dirsync", dst_dir);
    }
  }
  co_return rc == 0;
}

proc::Task<Status> PosixFilesys::Delete(const std::string& dir, const std::string& name) {
  int rc = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    rc = RetryEintr([&] { return ::unlinkat(dfd, name.c_str(), 0); });
    if (opened) {
      ::close(dfd);
    }
  } else {
    rc = RetryEintr([&] { return ::unlink(FullPath(dir, name).c_str()); });
  }
  if (rc != 0) {
    co_return ErrnoStatus("unlink", errno);
  }
  Cross("delete.entry", dir);
  Status ds = SyncDir(dir);
  if (!ds.ok()) {
    co_return ds;
  }
  if (options_.fsync_dirs) {
    Cross("delete.dirsync", dir);
  }
  co_return Status::Ok();
}

}  // namespace perennial::goosefs
