#include "src/goosefs/posix_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/base/panic.h"

namespace perennial::goosefs {

namespace {

Status ErrnoStatus(const char* op, int err) {
  std::string msg = std::string(op) + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(std::move(msg));
    case EEXIST:
      return Status::AlreadyExists(std::move(msg));
    default:
      return Status::Failed(std::move(msg));
  }
}

}  // namespace

PosixFilesys::PosixFilesys(std::string root, Options options)
    : root_(std::move(root)), options_(options) {}

PosixFilesys::~PosixFilesys() {
  for (auto& [dir, fd] : dir_fds_) {
    ::close(fd);
  }
}

Status PosixFilesys::EnsureDirs(const std::vector<std::string>& dirs) {
  for (const std::string& dir : dirs) {
    std::string path = root_ + "/" + dir;
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", errno);
    }
    Status s = ClearDir(dir);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status PosixFilesys::ClearDir(const std::string& dir) {
  std::string path = root_ + "/" + dir;
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) {
    return ErrnoStatus("opendir", errno);
  }
  while (struct dirent* entry = ::readdir(d)) {
    if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    std::string file = path + "/" + entry->d_name;
    ::unlink(file.c_str());
  }
  ::closedir(d);
  return Status::Ok();
}

int PosixFilesys::DirFd(const std::string& dir, bool* opened) {
  if (options_.cache_dir_fds) {
    *opened = false;
    std::scoped_lock lock(mu_);
    auto it = dir_fds_.find(dir);
    if (it != dir_fds_.end()) {
      return it->second;
    }
    std::string path = root_ + "/" + dir;
    int fd = ::open(path.c_str(), O_DIRECTORY | O_RDONLY);
    if (fd >= 0) {
      dir_fds_[dir] = fd;
    }
    return fd;
  }
  // Uncached mode (GoMail style): open the directory fresh each time, so
  // every operation pays a full path walk.
  *opened = true;
  std::string path = root_ + "/" + dir;
  return ::open(path.c_str(), O_DIRECTORY | O_RDONLY);
}

std::string PosixFilesys::FullPath(const std::string& dir, const std::string& name) const {
  return root_ + "/" + dir + "/" + name;
}

proc::Task<Result<Fd>> PosixFilesys::Create(const std::string& dir, const std::string& name) {
  int fd = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    fd = ::openat(dfd, name.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND, 0644);
    if (opened) {
      ::close(dfd);
    }
  } else {
    fd = ::open(FullPath(dir, name).c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND, 0644);
  }
  if (fd < 0) {
    co_return ErrnoStatus("create", errno);
  }
  co_return static_cast<Fd>(fd);
}

proc::Task<Result<Fd>> PosixFilesys::Open(const std::string& dir, const std::string& name) {
  int fd = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    fd = ::openat(dfd, name.c_str(), O_RDONLY);
    if (opened) {
      ::close(dfd);
    }
  } else {
    fd = ::open(FullPath(dir, name).c_str(), O_RDONLY);
  }
  if (fd < 0) {
    co_return ErrnoStatus("open", errno);
  }
  co_return static_cast<Fd>(fd);
}

proc::Task<Status> PosixFilesys::Append(Fd fd, const Bytes& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(static_cast<int>(fd), data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      co_return ErrnoStatus("write", errno);
    }
    written += static_cast<size_t>(n);
  }
  co_return Status::Ok();
}

proc::Task<Result<Bytes>> PosixFilesys::ReadAt(Fd fd, uint64_t off, uint64_t count) {
  Bytes out(count);
  size_t total = 0;
  while (total < count) {
    ssize_t n = ::pread(static_cast<int>(fd), out.data() + total, count - total,
                        static_cast<off_t>(off + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      co_return ErrnoStatus("pread", errno);
    }
    if (n == 0) {
      break;  // EOF
    }
    total += static_cast<size_t>(n);
  }
  out.resize(total);
  co_return out;
}

proc::Task<Status> PosixFilesys::Sync(Fd fd) {
  if (::fsync(static_cast<int>(fd)) != 0) {
    co_return ErrnoStatus("fsync", errno);
  }
  co_return Status::Ok();
}

proc::Task<Status> PosixFilesys::Close(Fd fd) {
  if (::close(static_cast<int>(fd)) != 0) {
    co_return ErrnoStatus("close", errno);
  }
  co_return Status::Ok();
}

proc::Task<Result<std::vector<std::string>>> PosixFilesys::List(const std::string& dir) {
  std::vector<std::string> names;
  bool opened = false;
  int dfd = DirFd(dir, &opened);
  if (dfd < 0) {
    co_return ErrnoStatus("open dir", errno);
  }
  // fdopendir takes ownership, so always hand it a duplicate.
  int dup_fd = ::dup(dfd);
  if (opened) {
    ::close(dfd);
  }
  if (dup_fd < 0) {
    co_return ErrnoStatus("dup", errno);
  }
  ::lseek(dup_fd, 0, SEEK_SET);
  DIR* d = ::fdopendir(dup_fd);
  if (d == nullptr) {
    ::close(dup_fd);
    co_return ErrnoStatus("fdopendir", errno);
  }
  while (struct dirent* entry = ::readdir(d)) {
    if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    names.emplace_back(entry->d_name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  co_return names;
}

proc::Task<bool> PosixFilesys::Link(const std::string& src_dir, const std::string& src_name,
                                    const std::string& dst_dir, const std::string& dst_name) {
  int rc = -1;
  if (options_.cache_dir_fds) {
    bool src_opened = false;
    bool dst_opened = false;
    int sfd = DirFd(src_dir, &src_opened);
    int dfd = DirFd(dst_dir, &dst_opened);
    if (sfd >= 0 && dfd >= 0) {
      rc = ::linkat(sfd, src_name.c_str(), dfd, dst_name.c_str(), 0);
    }
    if (src_opened && sfd >= 0) {
      ::close(sfd);
    }
    if (dst_opened && dfd >= 0) {
      ::close(dfd);
    }
  } else {
    rc = ::link(FullPath(src_dir, src_name).c_str(), FullPath(dst_dir, dst_name).c_str());
  }
  co_return rc == 0;
}

proc::Task<Status> PosixFilesys::Delete(const std::string& dir, const std::string& name) {
  int rc = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    rc = ::unlinkat(dfd, name.c_str(), 0);
    if (opened) {
      ::close(dfd);
    }
  } else {
    rc = ::unlink(FullPath(dir, name).c_str());
  }
  if (rc != 0) {
    co_return ErrnoStatus("unlink", errno);
  }
  co_return Status::Ok();
}

}  // namespace perennial::goosefs
