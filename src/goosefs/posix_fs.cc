#include "src/goosefs/posix_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/base/panic.h"
#include "src/base/stage_timer.h"

namespace perennial::goosefs {

namespace {

Status ErrnoStatus(const std::string& op, int err) {
  std::string msg = op + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(std::move(msg));
    case EEXIST:
      return Status::AlreadyExists(std::move(msg));
    case ENOSPC:
    case EDQUOT:
      // Space exhaustion is its own class: callers answer it with a
      // "mailbox full / try later" tempfail (SMTP 452) rather than the
      // generic local-error 451.
      return Status::NoSpace(std::move(msg));
    default:
      return Status::Failed(std::move(msg));
  }
}

// EINTR-retry wrapper for syscalls returning -1/errno. A signal landing
// mid-call (the server hot path runs under profiling timers and a
// killswitch-armed crash harness) must not surface as a spurious session
// error. Open/link/unlink on regular files never partially complete, so a
// retry is always safe.
template <typename Fn>
int RetryEintr(Fn&& fn) {
  int rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace

PosixFilesys::PosixFilesys(std::string root, Options options)
    : root_(std::move(root)), options_(options) {}

PosixFilesys::~PosixFilesys() {
  for (auto& [dir, fd] : dir_fds_) {
    ::close(fd);
  }
}

Status PosixFilesys::EnsureDirs(const std::vector<std::string>& dirs, bool clear_contents) {
  bool made_any = false;
  for (const std::string& dir : dirs) {
    std::string path = root_ + "/" + dir;
    if (::mkdir(path.c_str(), 0755) != 0) {
      // Idempotent across recovered runs: an existing directory is fine;
      // any other mkdir failure propagates instead of being papered over.
      if (errno != EEXIST) {
        return ErrnoStatus("mkdir " + path, errno);
      }
    } else {
      made_any = true;
    }
    if (clear_contents) {
      Status s = ClearDir(dir);
      if (!s.ok()) {
        return s;
      }
    }
  }
  if (options_.cache_dir_fds) {
    // Pre-open every layout dir and seal the cache: the hot path then
    // resolves dir fds with a lock-free lookup in an immutable map.
    // (Idempotent across recovered runs; a dir that appears later — none
    // does in practice — falls back to a fresh open per op.)
    std::scoped_lock lock(mu_);
    for (const std::string& dir : dirs) {
      if (dir_fds_.find(dir) != dir_fds_.end()) {
        continue;
      }
      std::string path = root_ + "/" + dir;
      int fd = RetryEintr([&] { return ::open(path.c_str(), O_DIRECTORY | O_RDONLY); });
      if (fd < 0) {
        return ErrnoStatus("open " + path, errno);
      }
      dir_fds_[dir] = fd;
    }
    sealed_.store(true, std::memory_order_release);
  }
  if (made_any && options_.fsync_dirs) {
    // The new entries live in root_; sync it so the layout itself is
    // durable before any files are created beneath it.
    int rfd = RetryEintr([&] { return ::open(root_.c_str(), O_DIRECTORY | O_RDONLY); });
    if (rfd < 0) {
      return ErrnoStatus("open root", errno);
    }
    int rc = RetryEintr([&] { return ::fsync(rfd); });
    int err = errno;
    ::close(rfd);
    if (rc != 0) {
      return ErrnoStatus("fsync root", err);
    }
  }
  return Status::Ok();
}

Status PosixFilesys::ClearDir(const std::string& dir) {
  std::string path = root_ + "/" + dir;
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) {
    return ErrnoStatus("opendir " + path, errno);
  }
  Status result = Status::Ok();
  while (struct dirent* entry = ::readdir(d)) {
    if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    std::string file = path + "/" + entry->d_name;
    if (RetryEintr([&] { return ::unlink(file.c_str()); }) != 0 && errno != ENOENT) {
      // Propagate the first failure (a directory, EPERM, ...) but keep
      // removing what we can; ENOENT just means someone beat us to it.
      if (result.ok()) {
        result = ErrnoStatus("unlink " + file, errno);
      }
    }
  }
  ::closedir(d);
  return result;
}

Status PosixFilesys::SyncDir(const std::string& dir) {
  if (!options_.fsync_dirs) {
    return Status::Ok();
  }
  bool opened = false;
  int dfd = DirFd(dir, &opened);
  if (dfd < 0) {
    return ErrnoStatus("open dir", errno);
  }
  Status s = DoFsync(dfd, "fsync dir");
  if (opened) {
    ::close(dfd);
  }
  return s;
}

Status PosixFilesys::DoFsync(int fd, const char* what) {
  // Everything in here is the durability barrier (group-commit wait or a
  // raw fsync); separate it from fs self-time in the stage profile.
  stage::StageScope scope(stage::kCommitWait);
  if (options_.fsyncer != nullptr) {
    return options_.fsyncer->Fsync(fd);
  }
  if (RetryEintr([&] { return Sys().Fsync(fd); }) != 0) {
    return ErrnoStatus(what, errno);
  }
  return Status::Ok();
}

bool PosixFilesys::EntryReconciled(const std::string& dir) const {
  for (const std::string& d : options_.recovery_reconciled_dirs) {
    if (d == dir) {
      return true;
    }
  }
  return false;
}

int PosixFilesys::DirFd(const std::string& dir, bool* opened) {
  if (options_.cache_dir_fds) {
    *opened = false;
    if (sealed_.load(std::memory_order_acquire)) {
      // Post-seal: dir_fds_ is immutable, no lock, no insertion. A miss
      // (a dir outside the EnsureDirs layout) gets a fresh per-op fd.
      auto it = dir_fds_.find(dir);
      if (it != dir_fds_.end()) {
        return it->second;
      }
      *opened = true;
      return RetryEintr([&] { return ::open(ScratchPath(dir, {}), O_DIRECTORY | O_RDONLY); });
    }
    std::scoped_lock lock(mu_);
    auto it = dir_fds_.find(dir);
    if (it != dir_fds_.end()) {
      return it->second;
    }
    std::string path = root_ + "/" + dir;
    int fd = RetryEintr([&] { return ::open(path.c_str(), O_DIRECTORY | O_RDONLY); });
    if (fd >= 0) {
      dir_fds_[dir] = fd;
    }
    return fd;
  }
  // Uncached mode (GoMail style): open the directory fresh each time, so
  // every operation pays a full path walk.
  *opened = true;
  return RetryEintr([&] { return ::open(ScratchPath(dir, {}), O_DIRECTORY | O_RDONLY); });
}

std::string PosixFilesys::FullPath(const std::string& dir, const std::string& name) const {
  return root_ + "/" + dir + "/" + name;
}

const char* PosixFilesys::ScratchPath(const std::string& dir, const std::string& name) const {
  // One reusable buffer per thread: path joins in uncached mode (and the
  // post-seal miss path) stop allocating per operation. The pointer is
  // valid until the calling thread's next ScratchPath call.
  thread_local std::string scratch;
  scratch.assign(root_);
  scratch += '/';
  scratch += dir;
  if (!name.empty()) {
    scratch += '/';
    scratch += name;
  }
  return scratch.c_str();
}

proc::Task<Result<Fd>> PosixFilesys::Create(const std::string& dir, const std::string& name) {
  stage::StageScope fs_stage(stage::kFs);
  int fd = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    fd = RetryEintr([&] {
      return Sys().OpenAt(dfd, name.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND, 0644);
    });
    if (opened) {
      ::close(dfd);
    }
  } else {
    fd = RetryEintr([&] {
      return Sys().OpenAt(AT_FDCWD, ScratchPath(dir, name), O_CREAT | O_EXCL | O_WRONLY | O_APPEND,
                          0644);
    });
  }
  if (fd < 0) {
    co_return ErrnoStatus("create", errno);
  }
  Cross("create.entry", dir);
  // Recovery-reconciled dirs skip the entry barrier entirely (the caller
  // sweeps the dir on recovery; see Options::recovery_reconciled_dirs).
  if (!EntryReconciled(dir)) {
    Status ds = SyncDir(dir);
    if (!ds.ok()) {
      ::close(fd);
      co_return ds;
    }
    // The .dirsync hook points mean "a directory fsync has landed" —
    // observers (crashreal's durability journal) treat the crossing itself
    // as the durability event, so it must not fire when no fsync happened
    // (fsync_dirs off, or the dir is recovery-reconciled).
    if (options_.fsync_dirs) {
      Cross("create.dirsync", dir);
    }
  }
  co_return static_cast<Fd>(fd);
}

proc::Task<Result<Fd>> PosixFilesys::Open(const std::string& dir, const std::string& name) {
  stage::StageScope fs_stage(stage::kFs);
  int fd = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    fd = RetryEintr([&] { return Sys().OpenAt(dfd, name.c_str(), O_RDONLY, 0); });
    if (opened) {
      ::close(dfd);
    }
  } else {
    fd = RetryEintr([&] { return Sys().OpenAt(AT_FDCWD, ScratchPath(dir, name), O_RDONLY, 0); });
  }
  if (fd < 0) {
    co_return ErrnoStatus("open", errno);
  }
  co_return static_cast<Fd>(fd);
}

proc::Task<Status> PosixFilesys::Append(Fd fd, const Bytes& data) {
  stage::StageScope fs_stage(stage::kFs);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = Sys().Write(static_cast<int>(fd), data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      co_return ErrnoStatus("write", errno);
    }
    written += static_cast<size_t>(n);
  }
  if (written > 0 && options_.fsyncer != nullptr) {
    options_.fsyncer->OnDirty(static_cast<int>(fd));
  }
  co_return Status::Ok();
}

proc::Task<Result<Bytes>> PosixFilesys::ReadAt(Fd fd, uint64_t off, uint64_t count) {
  stage::StageScope fs_stage(stage::kFs);
  Bytes out(count);
  size_t total = 0;
  while (total < count) {
    ssize_t n = Sys().Pread(static_cast<int>(fd), out.data() + total, count - total,
                            static_cast<off_t>(off + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      co_return ErrnoStatus("pread", errno);
    }
    if (n == 0) {
      break;  // EOF
    }
    total += static_cast<size_t>(n);
  }
  out.resize(total);
  co_return out;
}

proc::Task<Status> PosixFilesys::Sync(Fd fd) {
  stage::StageScope fs_stage(stage::kFs);
  co_return DoFsync(static_cast<int>(fd), "fsync");
}

proc::Task<Status> PosixFilesys::Close(Fd fd) {
  stage::StageScope fs_stage(stage::kFs);
  if (options_.fsyncer != nullptr) {
    options_.fsyncer->OnClose(static_cast<int>(fd));
  }
  if (::close(static_cast<int>(fd)) != 0) {
    co_return ErrnoStatus("close", errno);
  }
  co_return Status::Ok();
}

proc::Task<Result<std::vector<std::string>>> PosixFilesys::List(const std::string& dir) {
  stage::StageScope fs_stage(stage::kFs);
  std::vector<std::string> names;
  bool opened = false;
  int dfd = DirFd(dir, &opened);
  if (dfd < 0) {
    co_return ErrnoStatus("open dir", errno);
  }
  // Raw getdents64 on the directory fd: no dup, no fdopendir (which
  // fstats and heap-allocates a DIR) — just a rewind and batched reads.
  // The read position is fd state, so cached-mode callers must serialize
  // List per directory; Mailboat does (mailbox Lists run under the user
  // lock, the spool List only in single-threaded Recover). Concurrent
  // *fsyncs* of the same fd (group commit) don't touch the position.
  if (::lseek(dfd, 0, SEEK_SET) < 0) {
    if (opened) {
      ::close(dfd);
    }
    co_return ErrnoStatus("lseek dir", errno);
  }
  struct LinuxDirent64 {
    uint64_t d_ino;
    int64_t d_off;
    unsigned short d_reclen;
    unsigned char d_type;
    char d_name[];
  };
  alignas(8) char buf[4096];
  Status failed = Status::Ok();
  for (;;) {
    long n;
    do {
      n = ::syscall(SYS_getdents64, dfd, buf, sizeof(buf));
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      failed = ErrnoStatus("getdents64", errno);
      break;
    }
    if (n == 0) {
      break;
    }
    for (long pos = 0; pos < n;) {
      auto* entry = reinterpret_cast<LinuxDirent64*>(buf + pos);
      if (std::strcmp(entry->d_name, ".") != 0 && std::strcmp(entry->d_name, "..") != 0) {
        names.emplace_back(entry->d_name);
      }
      pos += entry->d_reclen;
    }
  }
  if (opened) {
    ::close(dfd);
  }
  if (!failed.ok()) {
    co_return failed;
  }
  std::sort(names.begin(), names.end());
  co_return names;
}

proc::Task<Result<bool>> PosixFilesys::Link(const std::string& src_dir, const std::string& src_name,
                                            const std::string& dst_dir,
                                            const std::string& dst_name) {
  stage::StageScope fs_stage(stage::kFs);
  int rc = -1;
  if (options_.cache_dir_fds) {
    bool src_opened = false;
    bool dst_opened = false;
    int sfd = DirFd(src_dir, &src_opened);
    int dfd = sfd >= 0 ? DirFd(dst_dir, &dst_opened) : -1;
    if (sfd >= 0 && dfd >= 0) {
      rc = RetryEintr([&] { return Sys().LinkAt(sfd, src_name.c_str(), dfd, dst_name.c_str()); });
    }
    int err = errno;
    if (src_opened && sfd >= 0) {
      ::close(sfd);
    }
    if (dst_opened && dfd >= 0) {
      ::close(dfd);
    }
    errno = err;
    if (sfd < 0 || dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
  } else {
    rc = RetryEintr([&] {
      return Sys().LinkAt(AT_FDCWD, FullPath(src_dir, src_name).c_str(), AT_FDCWD,
                          FullPath(dst_dir, dst_name).c_str());
    });
  }
  if (rc != 0) {
    // Only "name taken" is the boolean outcome; everything else (EIO,
    // ENOSPC, ...) must surface as a status, or the caller would keep
    // generating fresh names against a disk that fails every linkat.
    if (errno == EEXIST) {
      co_return false;
    }
    co_return ErrnoStatus("link", errno);
  }
  Cross("link.entry", dst_dir);
  // The new entry is durable only once dst_dir itself is synced. A failed
  // directory fsync means durability is unknowable: report it so the
  // caller tempfails (and compensates with an unlink) instead of acking.
  Status ds = SyncDir(dst_dir);
  if (!ds.ok()) {
    co_return ds;
  }
  if (options_.fsync_dirs) {
    Cross("link.dirsync", dst_dir);
  }
  co_return true;
}

proc::Task<Status> PosixFilesys::Delete(const std::string& dir, const std::string& name) {
  stage::StageScope fs_stage(stage::kFs);
  int rc = -1;
  if (options_.cache_dir_fds) {
    bool opened = false;
    int dfd = DirFd(dir, &opened);
    if (dfd < 0) {
      co_return ErrnoStatus("open dir", errno);
    }
    rc = RetryEintr([&] { return Sys().UnlinkAt(dfd, name.c_str()); });
    if (opened) {
      int err = errno;
      ::close(dfd);
      errno = err;
    }
  } else {
    rc = RetryEintr([&] { return Sys().UnlinkAt(AT_FDCWD, ScratchPath(dir, name)); });
  }
  if (rc != 0) {
    co_return ErrnoStatus("unlink", errno);
  }
  Cross("delete.entry", dir);
  if (!EntryReconciled(dir)) {
    Status ds = SyncDir(dir);
    if (!ds.ok()) {
      co_return ds;
    }
    if (options_.fsync_dirs) {
      Cross("delete.dirsync", dir);
    }
  }
  co_return Status::Ok();
}

}  // namespace perennial::goosefs
