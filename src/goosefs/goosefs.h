// The modeled Goose file system (§6.2), with the paper's crash model.
//
// State is split by durability:
//  * Durable: directories (name → inode), inode contents, link counts.
//  * Volatile: open file descriptors.
// On crash, fds are lost (they are stamped with the crash generation and
// cleared), file data persists, and inodes with zero links and no open fd
// are reclaimed — which is why Mailboat's recovery only has to unlink spool
// files, never "half-written" anonymous data.
//
// Every operation is atomic with respect to other threads (one scheduling
// point, then the whole effect), matching the paper's semantics of the
// POSIX calls it models.
#ifndef PERENNIAL_SRC_GOOSEFS_GOOSEFS_H_
#define PERENNIAL_SRC_GOOSEFS_GOOSEFS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/goose/world.h"
#include "src/goosefs/filesys.h"
#include "src/proc/scheduler.h"

namespace perennial::goosefs {

class GooseFs : public Filesys, public goose::CrashAware {
 public:
  struct Options {
    // Deferred durability (the paper's named future-work extension): file
    // DATA is buffered in memory until Sync(fd); a crash truncates each
    // file to its last-synced length. Metadata (create/link/delete) stays
    // synchronous, like a journaled file system with delayed allocation.
    bool deferred_durability = false;
    // Environment faults. With deferred durability, an armed kUnsyncedTail
    // fault makes a crash keep part of the unsynced tail of one file — the
    // page cache flushed more than Sync() promised. Sound recovery code may
    // rely on the synced prefix surviving but never on the tail being gone.
    fault::FaultSchedule* faults = nullptr;
    // Record every operation as footprint-opaque instead of with precise
    // per-inode/per-entry access records (the pre-PR-4 behavior). Opaque
    // steps conflict with everything, so this only disables DPOR pruning
    // around file-system steps — it never changes verdicts. Kept as a
    // soundness control: equivalence tests diff precise-vs-opaque runs.
    bool opaque_footprints = false;
  };

  // The directory layout is fixed at construction (§6.2: directories cannot
  // be created or renamed).
  GooseFs(goose::World* world, std::vector<std::string> dirs, Options options);
  GooseFs(goose::World* world, std::vector<std::string> dirs)
      : GooseFs(world, std::move(dirs), Options{}) {}

  proc::Task<Result<Fd>> Create(const std::string& dir, const std::string& name) override;
  proc::Task<Result<Fd>> Open(const std::string& dir, const std::string& name) override;
  proc::Task<Status> Append(Fd fd, const Bytes& data) override;
  proc::Task<Result<Bytes>> ReadAt(Fd fd, uint64_t off, uint64_t count) override;
  proc::Task<Status> Sync(Fd fd) override;
  proc::Task<Status> Close(Fd fd) override;
  proc::Task<Result<std::vector<std::string>>> List(const std::string& dir) override;
  proc::Task<Result<bool>> Link(const std::string& src_dir, const std::string& src_name,
                        const std::string& dst_dir, const std::string& dst_name) override;
  proc::Task<Status> Delete(const std::string& dir, const std::string& name) override;

  // Crash model: fds lost, data durable, orphaned inodes reclaimed.
  void OnCrash() override;

  // --- Harness-only observation (for invariants and tests) ---

  // Names present in `dir`, sorted. Panics on unknown dir.
  std::vector<std::string> PeekNames(const std::string& dir) const;
  // Contents of (dir, name) or nullopt when absent.
  std::optional<Bytes> PeekFile(const std::string& dir, const std::string& name) const;
  // The durable prefix only (what a crash would preserve).
  std::optional<Bytes> PeekDurableFile(const std::string& dir, const std::string& name) const;
  size_t OpenFdCountForTesting() const { return fds_.size(); }
  size_t InodeCountForTesting() const { return inodes_.size(); }
  // A canonical string of the durable state: directory trees + contents.
  // Used by explorers to deduplicate states.
  std::string DurableFingerprint() const;

 private:
  enum class Mode { kRead, kAppend };

  struct Inode {
    Bytes data;
    uint64_t synced_len = 0;  // prefix guaranteed durable (== size unless deferred)
    uint64_t nlink = 0;
    uint64_t open_fds = 0;
  };
  struct FdState {
    uint64_t ino = 0;
    Mode mode = Mode::kRead;
  };

  // Looks up an fd, raising UB for stale/bad descriptors (a crashed fd or a
  // double close is a program bug, not an environment condition).
  FdState& ResolveFd(Fd fd, const char* op);
  void MaybeReclaim(uint64_t ino);

  // --- DPOR access records (src/proc/footprint.h; see DESIGN.md §10) ---
  // Each op announces the resources it may touch; failure paths record the
  // success-path superset, which only adds conflicts (sound, pessimal).
  // With options_.opaque_footprints the op is marked opaque instead and the
  // Rec() calls become no-ops.
  void BeginOpFootprint() const;
  void Rec(uint64_t resource, bool write) const;
  uint64_t AllocRes() const;
  uint64_t DirRes(const std::string& dir) const;
  uint64_t EntryRes(const std::string& dir, const std::string& name) const;
  uint64_t InodeRes(uint64_t ino) const;
  uint64_t TailRes(uint64_t ino) const;
  uint64_t FdRes(Fd fd) const;

  goose::World* world_;
  Options options_;
  uint64_t res_seed_ = 0;  // per-instance footprint namespace
  std::map<std::string, std::map<std::string, uint64_t>> dirs_;
  std::map<uint64_t, Inode> inodes_;
  std::map<Fd, FdState> fds_;
  uint64_t next_ino_ = 1;
  Fd next_fd_ = 1;
};

}  // namespace perennial::goosefs

#endif  // PERENNIAL_SRC_GOOSEFS_GOOSEFS_H_
