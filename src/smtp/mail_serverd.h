// The mail daemon: concurrent SMTP/POP3 sessions over connections.
//
// A "connection" is a pair of line channels (goose::Chan<std::string>),
// playing the role of a TCP stream: clients write commands into `to_server`
// and read responses from `to_client`. The daemon's accept loop receives
// connections from a listener channel and spawns one goroutine per session
// — the same structure as a Go server built on net.Listener, expressed
// with the Goose primitives so the whole thing runs under the simulated
// scheduler (and therefore under the checker's schedules).
//
// The protocol layer is unverified, exactly as in the paper (§8.2): the
// guarantees live in the Mailboat library underneath.
#ifndef PERENNIAL_SRC_SMTP_MAIL_SERVERD_H_
#define PERENNIAL_SRC_SMTP_MAIL_SERVERD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/goose/channel.h"
#include "src/goose/world.h"
#include "src/mailboat/mail_api.h"
#include "src/proc/task.h"

namespace perennial::smtp {

enum class Protocol { kSmtp, kPop3 };

// One logical connection (both stream directions).
struct LineConn {
  std::shared_ptr<goose::Chan<std::string>> to_server;
  std::shared_ptr<goose::Chan<std::string>> to_client;
};

// Creates a connection with small bounded stream buffers.
LineConn MakeConn(goose::World* world);

struct Accepted {
  Protocol protocol = Protocol::kSmtp;
  LineConn conn;
};

class MailServerd {
 public:
  MailServerd(goose::World* world, mailboat::MailApi* mail) : world_(world), mail_(mail) {}

  // Serves one session to completion: greets, processes lines until QUIT
  // or client disconnect, closes the response stream.
  proc::Task<void> ServeConn(Protocol protocol, LineConn conn);

  // Accepts connections until the listener channel closes, spawning one
  // goroutine per session (simulated mode only).
  proc::Task<void> AcceptLoop(goose::Chan<Accepted>* listener);

 private:
  goose::World* world_;
  mailboat::MailApi* mail_;
};

// Client helper: sends each line and collects every response the server
// produces, until the server closes the stream.
proc::Task<std::vector<std::string>> RunClientScript(LineConn conn,
                                                     std::vector<std::string> lines);

}  // namespace perennial::smtp

#endif  // PERENNIAL_SRC_SMTP_MAIL_SERVERD_H_
