#include "src/smtp/smtp.h"

#include "src/base/strutil.h"
#include "src/goosefs/filesys.h"

namespace perennial::smtp {

std::optional<uint64_t> ParseUserAddress(const std::string& addr, uint64_t num_users) {
  std::string_view s = StripWhitespace(addr);
  if (!s.empty() && s.front() == '<' && s.back() == '>') {
    s = s.substr(1, s.size() - 2);
  }
  size_t at = s.find('@');
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view local = s.substr(0, at);
  if (local.substr(0, 4) != "user") {
    return std::nullopt;
  }
  uint64_t n = 0;
  if (!ParseUint64(local.substr(4), &n) || n >= num_users) {
    return std::nullopt;
  }
  return n;
}

namespace {

// Splits "VERB rest" (verb is case-insensitive).
std::pair<std::string, std::string> SplitVerb(const std::string& line) {
  std::string_view s = StripWhitespace(line);
  size_t space = s.find(' ');
  if (space == std::string_view::npos) {
    return {AsciiUpper(s), ""};
  }
  return {AsciiUpper(s.substr(0, space)), std::string(StripWhitespace(s.substr(space + 1)))};
}

// Extracts the address from "FROM:<a@b>" / "TO:<a@b>" argument forms.
std::string AddressArg(const std::string& arg, const char* prefix) {
  std::string upper = AsciiUpper(arg);
  std::string want = std::string(prefix) + ":";
  if (upper.size() < want.size() || upper.compare(0, want.size(), want) != 0) {
    return "";
  }
  return std::string(StripWhitespace(std::string_view(arg).substr(want.size())));
}

}  // namespace

void SmtpSession::Reset() {
  have_sender_ = false;
  rcpts_.clear();
  data_.clear();
}

proc::Task<std::string> SmtpSession::HandleLine(const std::string& line) {
  if (state_ == State::kData) {
    if (line == ".") {
      state_ = State::kCommand;
      // End of message: deliver to every recipient. Each delivery is
      // atomic and durable when Deliver returns (§8.1).
      goosefs::Bytes body = goosefs::BytesOfString(data_);
      for (uint64_t user : rcpts_) {
        (void)co_await mail_->Deliver(user, body);
      }
      size_t count = rcpts_.size();
      Reset();
      co_return "250 OK: delivered to " + std::to_string(count) + " mailbox(es)";
    }
    // Dot-stuffing: a leading ".." encodes a literal ".".
    if (line.size() >= 2 && line[0] == '.' && line[1] == '.') {
      data_ += line.substr(1);
    } else {
      data_ += line;
    }
    data_ += "\r\n";
    co_return "";  // no response while in DATA
  }
  std::string response = co_await HandleCommand(line);
  co_return response;
}

proc::Task<std::string> SmtpSession::HandleCommand(const std::string& line) {
  auto [verb, arg] = SplitVerb(line);
  if (verb == "HELO" || verb == "EHLO") {
    greeted_ = true;
    Reset();
    co_return "250 perennial-cc at your service";
  }
  if (verb == "QUIT") {
    quit_ = true;
    co_return "221 Bye";
  }
  if (verb == "NOOP") {
    co_return "250 OK";
  }
  if (verb == "RSET") {
    Reset();
    co_return "250 OK";
  }
  if (!greeted_) {
    co_return "503 Say HELO first";
  }
  if (verb == "MAIL") {
    std::string addr = AddressArg(arg, "FROM");
    if (addr.empty()) {
      co_return "501 Syntax: MAIL FROM:<address>";
    }
    Reset();
    have_sender_ = true;
    co_return "250 OK";
  }
  if (verb == "RCPT") {
    if (!have_sender_) {
      co_return "503 Need MAIL FROM first";
    }
    std::string addr = AddressArg(arg, "TO");
    std::optional<uint64_t> user = ParseUserAddress(addr, mail_->num_users());
    if (!user.has_value()) {
      co_return "550 No such user";
    }
    rcpts_.push_back(*user);
    co_return "250 OK";
  }
  if (verb == "DATA") {
    if (rcpts_.empty()) {
      co_return "503 Need RCPT TO first";
    }
    state_ = State::kData;
    data_.clear();
    co_return "354 End data with <CRLF>.<CRLF>";
  }
  co_return "500 Unrecognized command";
}

}  // namespace perennial::smtp
