#include "src/smtp/smtp.h"

#include "src/base/strutil.h"
#include "src/goosefs/filesys.h"

namespace perennial::smtp {

std::optional<uint64_t> ParseUserAddress(std::string_view addr, uint64_t num_users) {
  std::string_view s = StripWhitespace(addr);
  if (!s.empty() && s.front() == '<' && s.back() == '>') {
    s = s.substr(1, s.size() - 2);
  }
  size_t at = s.find('@');
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view local = s.substr(0, at);
  if (local.substr(0, 4) != "user") {
    return std::nullopt;
  }
  uint64_t n = 0;
  if (!ParseUint64(local.substr(4), &n) || n >= num_users) {
    return std::nullopt;
  }
  return n;
}

namespace {

// Allocation-free verb dispatch: every verb in the subset is exactly four
// characters, so a command's verb packs into one uppercased uint32.
constexpr uint32_t kHelo = VerbCode("HELO");
constexpr uint32_t kEhlo = VerbCode("EHLO");
constexpr uint32_t kQuit = VerbCode("QUIT");
constexpr uint32_t kNoop = VerbCode("NOOP");
constexpr uint32_t kRset = VerbCode("RSET");
constexpr uint32_t kMail = VerbCode("MAIL");
constexpr uint32_t kRcpt = VerbCode("RCPT");
constexpr uint32_t kData = VerbCode("DATA");

// Splits "VERB rest": the packed verb code (0 = no such verb) and the
// stripped argument, borrowed from `line`.
std::pair<uint32_t, std::string_view> SplitVerb(std::string_view line) {
  std::string_view s = StripWhitespace(line);
  size_t space = s.find(' ');
  if (space == std::string_view::npos) {
    return {VerbCode(s), std::string_view()};
  }
  return {VerbCode(s.substr(0, space)), StripWhitespace(s.substr(space + 1))};
}

// Extracts the address from "FROM:<a@b>" / "TO:<a@b>" argument forms
// (prefix is case-insensitive, must be upper-case here). Empty view for
// any mismatch, borrowed from `arg` otherwise.
std::string_view AddressArg(std::string_view arg, std::string_view prefix) {
  if (arg.size() < prefix.size() + 1 || arg[prefix.size()] != ':') {
    return {};
  }
  for (size_t i = 0; i < prefix.size(); ++i) {
    auto u = static_cast<unsigned char>(arg[i]);
    if (u >= 'a' && u <= 'z') {
      u = static_cast<unsigned char>(u - ('a' - 'A'));
    }
    if (u != static_cast<unsigned char>(prefix[i])) {
      return {};
    }
  }
  return StripWhitespace(arg.substr(prefix.size() + 1));
}

}  // namespace

void SmtpSession::Reset() {
  have_sender_ = false;
  rcpts_.clear();
  data_.clear();
}

proc::Task<std::string> SmtpSession::HandleLine(std::string_view line) {
  if (state_ == State::kData) {
    if (line == ".") {
      state_ = State::kCommand;
      // End of message: deliver to every recipient, streaming chunks
      // straight out of data_ — the session is serialized per connection
      // and data_ is stable until Reset below, so no body copy is made.
      // Each delivery is atomic and durable when it returns (§8.1).
      uint64_t len = data_.size();
      Status failed = Status::Ok();
      for (uint64_t user : rcpts_) {
        mailboat::ChunkReader reader = [this](uint64_t off,
                                              uint64_t n) -> proc::Task<goosefs::Bytes> {
          uint64_t end = off + n;
          if (end > data_.size()) {
            end = data_.size();
          }
          co_return goosefs::Bytes(data_.begin() + static_cast<long>(off),
                                   data_.begin() + static_cast<long>(end));
        };
        Result<std::string> id = co_await mail_->DeliverChunked(user, len, std::move(reader));
        if (!id.ok()) {
          failed = id.status();
          break;
        }
      }
      size_t count = rcpts_.size();
      Reset();
      if (!failed.ok()) {
        // Tempfail the whole message: a 451/452 tells the client to retry
        // later, and already-delivered recipients at worst see a duplicate
        // on that retry (mail's at-least-once norm) — never a false 250
        // for bytes that hit no durable mailbox. ENOSPC gets the specific
        // "insufficient storage" code so senders can back off differently.
        if (failed.code() == StatusCode::kNoSpace) {
          co_return "452 Requested action not taken: insufficient system storage";
        }
        co_return "451 Requested action aborted: local error in processing";
      }
      co_return "250 OK: delivered to " + std::to_string(count) + " mailbox(es)";
    }
    // Dot-stuffing: a leading ".." encodes a literal ".".
    if (line.size() >= 2 && line[0] == '.' && line[1] == '.') {
      line.remove_prefix(1);
    }
    data_ += line;
    data_ += "\r\n";
    co_return "";  // no response while in DATA
  }
  std::string response = co_await HandleCommand(line);
  co_return response;
}

proc::Task<std::string> SmtpSession::HandleCommand(std::string_view line) {
  auto [verb, arg] = SplitVerb(line);
  if (verb == kHelo || verb == kEhlo) {
    greeted_ = true;
    Reset();
    co_return "250 perennial-cc at your service";
  }
  if (verb == kQuit) {
    quit_ = true;
    co_return "221 Bye";
  }
  if (verb == kNoop) {
    co_return "250 OK";
  }
  if (verb == kRset) {
    Reset();
    co_return "250 OK";
  }
  if (!greeted_) {
    co_return "503 Say HELO first";
  }
  if (verb == kMail) {
    std::string_view addr = AddressArg(arg, "FROM");
    if (addr.empty()) {
      co_return "501 Syntax: MAIL FROM:<address>";
    }
    Reset();
    have_sender_ = true;
    co_return "250 OK";
  }
  if (verb == kRcpt) {
    if (!have_sender_) {
      co_return "503 Need MAIL FROM first";
    }
    std::string_view addr = AddressArg(arg, "TO");
    std::optional<uint64_t> user = ParseUserAddress(addr, mail_->num_users());
    if (!user.has_value()) {
      co_return "550 No such user";
    }
    rcpts_.push_back(*user);
    co_return "250 OK";
  }
  if (verb == kData) {
    if (rcpts_.empty()) {
      co_return "503 Need RCPT TO first";
    }
    state_ = State::kData;
    data_.clear();
    co_return "354 End data with <CRLF>.<CRLF>";
  }
  co_return "500 Unrecognized command";
}

}  // namespace perennial::smtp
