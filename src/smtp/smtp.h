// A minimal SMTP server session over the Mailboat API (§8.2: "we used the
// library to implement an SMTP- and POP3-compatible mail server").
//
// The session is transport-agnostic: feed it one command line at a time
// and write back the returned responses. The example mail server drives it
// from an in-process line loop; a socket loop would work identically.
// Protocol subset: HELO/EHLO, MAIL FROM, RCPT TO (multiple), DATA, RSET,
// NOOP, QUIT. Addresses are user<N>@<anything>, mapping to Mailboat user N.
#ifndef PERENNIAL_SRC_SMTP_SMTP_H_
#define PERENNIAL_SRC_SMTP_SMTP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/mailboat/mail_api.h"
#include "src/proc/task.h"

namespace perennial::smtp {

// Parses "user<N>@domain" (with or without <angle brackets>) to N.
// Returns nullopt for anything else or N >= num_users.
std::optional<uint64_t> ParseUserAddress(std::string_view addr, uint64_t num_users);

class SmtpSession {
 public:
  explicit SmtpSession(mailboat::MailApi* mail) : mail_(mail) {}

  // The server's opening banner (send before reading any command).
  static std::string Greeting() { return "220 perennial-cc mail service ready"; }

  // Processes one client line; returns the full response (single line, no
  // trailing newline). Delivery happens when the DATA terminator arrives.
  // The view is borrowed: it must stay valid (bytes unmoved) until the
  // returned task completes — netserv guarantees this by never compacting
  // the receive buffer while a line is checked out.
  proc::Task<std::string> HandleLine(std::string_view line);

  bool quit() const { return quit_; }

 private:
  enum class State { kCommand, kData };

  proc::Task<std::string> HandleCommand(std::string_view line);
  void Reset();

  mailboat::MailApi* mail_;
  State state_ = State::kCommand;
  bool greeted_ = false;
  bool have_sender_ = false;
  std::vector<uint64_t> rcpts_;
  std::string data_;
  bool quit_ = false;
};

}  // namespace perennial::smtp

#endif  // PERENNIAL_SRC_SMTP_SMTP_H_
