#include "src/smtp/mail_serverd.h"

#include "src/smtp/pop3.h"
#include "src/smtp/smtp.h"

namespace perennial::smtp {

LineConn MakeConn(goose::World* world) {
  LineConn conn;
  conn.to_server = std::make_shared<goose::Chan<std::string>>(world, 64);
  conn.to_client = std::make_shared<goose::Chan<std::string>>(world, 64);
  return conn;
}

proc::Task<void> MailServerd::ServeConn(Protocol protocol, LineConn conn) {
  if (protocol == Protocol::kSmtp) {
    SmtpSession session(mail_);
    co_await conn.to_client->Send(SmtpSession::Greeting());
    while (!session.quit()) {
      std::optional<std::string> line = co_await conn.to_server->Recv();
      if (!line.has_value()) {
        break;  // client hung up; SMTP has no lock state to release
      }
      std::string response = co_await session.HandleLine(*line);
      if (!response.empty()) {
        co_await conn.to_client->Send(response);
      }
    }
    co_await conn.to_client->Close();
    co_return;
  }
  Pop3Session session(mail_);
  co_await conn.to_client->Send(Pop3Session::Greeting());
  while (!session.quit()) {
    std::optional<std::string> line = co_await conn.to_server->Recv();
    if (!line.has_value()) {
      // Dropped connection: release the mailbox lock without committing
      // any deletions (§8.1: Unlock on disconnect).
      co_await session.Abort();
      break;
    }
    std::string response = co_await session.HandleLine(*line);
    co_await conn.to_client->Send(response);
  }
  co_await conn.to_client->Close();
}

proc::Task<void> MailServerd::AcceptLoop(goose::Chan<Accepted>* listener) {
  PCC_ENSURE(proc::CurrentScheduler() != nullptr,
             "AcceptLoop spawns goroutines: simulated mode only");
  while (true) {
    std::optional<Accepted> accepted = co_await listener->Recv();
    if (!accepted.has_value()) {
      co_return;  // listener closed: daemon shuts down
    }
    // One goroutine per connection, like `go serveConn(c)`.
    proc::CurrentScheduler()->Spawn(ServeConn(accepted->protocol, accepted->conn), "session");
  }
}

proc::Task<std::vector<std::string>> RunClientScript(LineConn conn,
                                                     std::vector<std::string> lines) {
  std::vector<std::string> responses;
  // Read the greeting first.
  std::optional<std::string> greeting = co_await conn.to_client->Recv();
  if (greeting.has_value()) {
    responses.push_back(*greeting);
  }
  for (std::string& line : lines) {
    co_await conn.to_server->Send(std::move(line));
  }
  co_await conn.to_server->Close();
  while (true) {
    std::optional<std::string> response = co_await conn.to_client->Recv();
    if (!response.has_value()) {
      break;
    }
    responses.push_back(*response);
  }
  co_return responses;
}

}  // namespace perennial::smtp
