// A minimal POP3 server session over the Mailboat API.
//
// POP3 maps naturally onto the library's locking discipline: PASS performs
// Pickup (listing the mailbox and taking the user's lock), DELE marks
// messages, and QUIT commits the marked deletions and Unlocks — so a
// dropped connection (Abort) loses no mail.
// Subset: USER, PASS, STAT, LIST, RETR, DELE, RSET, NOOP, QUIT.
#ifndef PERENNIAL_SRC_SMTP_POP3_H_
#define PERENNIAL_SRC_SMTP_POP3_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/mailboat/mail_api.h"
#include "src/mailboat/mailboat.h"
#include "src/proc/task.h"

namespace perennial::smtp {

class Pop3Session {
 public:
  explicit Pop3Session(mailboat::MailApi* mail) : mail_(mail) {}

  static std::string Greeting() { return "+OK perennial-cc POP3 ready"; }

  // Processes one client line; multi-line responses are joined with "\r\n"
  // and terminated with a lone "." line, as on the wire. The view is
  // borrowed; it must stay valid until the returned task completes.
  proc::Task<std::string> HandleLine(std::string_view line);

  // Connection dropped without QUIT: release the lock, delete nothing.
  proc::Task<void> Abort();

  bool quit() const { return quit_; }

 private:
  enum class State { kAuthUser, kAuthPass, kTransaction, kDone };

  mailboat::MailApi* mail_;
  State state_ = State::kAuthUser;
  uint64_t user_ = 0;
  std::vector<mailboat::Message> messages_;
  std::vector<bool> deleted_;
  bool quit_ = false;
};

}  // namespace perennial::smtp

#endif  // PERENNIAL_SRC_SMTP_POP3_H_
