#include "src/smtp/pop3.h"

#include "src/base/strutil.h"

namespace perennial::smtp {

namespace {

// Packed 4-character verbs (see VerbCode): allocation-free dispatch.
constexpr uint32_t kQuit = VerbCode("QUIT");
constexpr uint32_t kNoop = VerbCode("NOOP");
constexpr uint32_t kUser = VerbCode("USER");
constexpr uint32_t kPass = VerbCode("PASS");
constexpr uint32_t kStat = VerbCode("STAT");
constexpr uint32_t kList = VerbCode("LIST");
constexpr uint32_t kRetr = VerbCode("RETR");
constexpr uint32_t kDele = VerbCode("DELE");
constexpr uint32_t kRset = VerbCode("RSET");

std::pair<uint32_t, std::string_view> SplitVerb(std::string_view line) {
  std::string_view s = StripWhitespace(line);
  size_t space = s.find(' ');
  if (space == std::string_view::npos) {
    return {VerbCode(s), std::string_view()};
  }
  return {VerbCode(s.substr(0, space)), StripWhitespace(s.substr(space + 1))};
}

}  // namespace

proc::Task<std::string> Pop3Session::HandleLine(std::string_view line) {
  auto [verb, arg] = SplitVerb(line);

  if (verb == kQuit) {
    quit_ = true;
    if (state_ == State::kTransaction) {
      // Commit marked deletions under the lock we have held since PASS.
      size_t failed_deletes = 0;
      for (size_t i = 0; i < messages_.size(); ++i) {
        if (deleted_[i]) {
          Status s = co_await mail_->Delete(user_, messages_[i].id);
          if (!s.ok()) {
            ++failed_deletes;
          }
        }
      }
      co_await mail_->Unlock(user_);
      state_ = State::kDone;
      if (failed_deletes > 0) {
        // RFC 1939: deletions that could not be applied are reported, not
        // silently acked — the messages remain for the next session.
        co_return "-ERR some deleted messages not removed";
      }
    }
    co_return "+OK Bye";
  }
  if (verb == kNoop) {
    co_return "+OK";
  }

  switch (state_) {
    case State::kAuthUser: {
      if (verb != kUser) {
        co_return "-ERR Expected USER";
      }
      uint64_t n = 0;
      if (arg.substr(0, 4) != "user" || !ParseUint64(arg.substr(4), &n) ||
          n >= mail_->num_users()) {
        co_return "-ERR No such user";
      }
      user_ = n;
      state_ = State::kAuthPass;
      co_return "+OK";
    }
    case State::kAuthPass: {
      if (verb != kPass) {
        co_return "-ERR Expected PASS";
      }
      // Any password accepted; PASS is where the mailbox lock is taken.
      Result<std::vector<mailboat::Message>> picked = co_await mail_->Pickup(user_);
      if (!picked.ok()) {
        // Pickup released the lock before failing; stay in kAuthPass so
        // the client can retry PASS after the disk recovers.
        co_return "-ERR mailbox temporarily unavailable";
      }
      messages_ = std::move(picked.value());
      deleted_.assign(messages_.size(), false);
      state_ = State::kTransaction;
      co_return "+OK " + std::to_string(messages_.size()) + " messages";
    }
    case State::kTransaction: {
      if (verb == kStat) {
        uint64_t count = 0;
        uint64_t bytes = 0;
        for (size_t i = 0; i < messages_.size(); ++i) {
          if (!deleted_[i]) {
            ++count;
            bytes += messages_[i].contents.size();
          }
        }
        co_return "+OK " + std::to_string(count) + " " + std::to_string(bytes);
      }
      if (verb == kList) {
        std::string out = "+OK";
        for (size_t i = 0; i < messages_.size(); ++i) {
          if (!deleted_[i]) {
            out += "\r\n" + std::to_string(i + 1) + " " +
                   std::to_string(messages_[i].contents.size());
          }
        }
        out += "\r\n.";
        co_return out;
      }
      uint64_t n = 0;
      bool has_index = ParseUint64(arg, &n) && n >= 1 && n <= messages_.size() &&
                       !deleted_[n - 1];
      if (verb == kRetr) {
        if (!has_index) {
          co_return "-ERR No such message";
        }
        co_return "+OK\r\n" + messages_[n - 1].contents + "\r\n.";
      }
      if (verb == kDele) {
        if (!has_index) {
          co_return "-ERR No such message";
        }
        deleted_[n - 1] = true;  // committed at QUIT
        co_return "+OK";
      }
      if (verb == kRset) {
        deleted_.assign(messages_.size(), false);
        co_return "+OK";
      }
      co_return "-ERR Unrecognized command";
    }
    case State::kDone:
      co_return "-ERR Session closed";
  }
  co_return "-ERR";
}

proc::Task<void> Pop3Session::Abort() {
  if (state_ == State::kTransaction) {
    co_await mail_->Unlock(user_);
    state_ = State::kDone;
  }
}

}  // namespace perennial::smtp
