// Syscall-level fault injection for the real-OS storage path.
//
// `src/fault/` (PR 2) injects faults into the *modeled* environment: the
// explorer arms a FaultKind and the modeled device consumes it, all as pure
// functions of the decision path. The production server (src/netserv/) runs
// on a real kernel, where the same fault classes arrive as errno values:
// transient reads/writes are EIO, torn writes are short write() returns,
// unsynced-tail loss is a failed fsync whose dirty pages Linux then DROPS
// (so a later fsync can report success without the data ever reaching
// media), and the real world adds ENOSPC and EINTR.
//
// This header carries the same plan vocabulary to reality:
//  * FsSyscalls — the injectable syscall seam PosixFilesys and
//    GroupCommitter route every storage syscall through (mirroring
//    PosixDisk's injectable PwriteAll/PreadAll and netserv's RawSys socket
//    table). The default implementation is the raw syscall.
//  * SyscallFaultPlan — per-class fire rates named after the FaultKind
//    vocabulary (transient-read, transient-write, short-write == the torn
//    prefix, failed-sync == the unsynced tail, plus no-space and eintr),
//    parsed from a "key=rate,..." spec string usable from CLI flags.
//  * FaultInjectingSyscalls — a seeded, thread-safe FsSyscalls that fires
//    each class independently at its configured rate. Deterministic per
//    (seed, call sequence): no wall-clock entropy, so a soak failure
//    reproduces under the same seed and thread schedule.
#ifndef PERENNIAL_SRC_FAULT_SYSCALL_FAULT_H_
#define PERENNIAL_SRC_FAULT_SYSCALL_FAULT_H_

#include <fcntl.h>
#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/base/rand.h"
#include "src/base/status.h"

namespace perennial::fault {

// Every storage syscall PosixFilesys / GroupCommitter issues on the data
// path. Implementations return the syscall's return value and set errno on
// failure, exactly like the raw calls, so the callers' errno handling
// (EINTR retry loops, ErrnoStatus mapping) is exercised unchanged.
class FsSyscalls {
 public:
  virtual ~FsSyscalls() = default;

  virtual int OpenAt(int dirfd, const char* name, int flags, mode_t mode) {
    return ::openat(dirfd, name, flags, mode);
  }
  virtual ssize_t Write(int fd, const void* buf, size_t count);
  virtual ssize_t Pread(int fd, void* buf, size_t count, off_t off);
  virtual int Fsync(int fd);
  virtual int Syncfs(int fd);
  virtual int LinkAt(int src_dirfd, const char* src, int dst_dirfd, const char* dst);
  virtual int UnlinkAt(int dirfd, const char* name);
};

// The process-wide pass-through instance (raw syscalls, no state).
FsSyscalls* RealFsSyscalls();

// Which class a firing belongs to; indexes the injected() counters.
enum class SyscallFaultKind {
  kTransientRead,   // pread fails EIO
  kTransientWrite,  // write/linkat/unlinkat fails EIO
  kNoSpace,         // write/creating-openat/linkat fails ENOSPC
  kShortWrite,      // write persists only a prefix (the torn-write analog)
  kFailedSync,      // fsync/syncfs fails EIO (the unsynced-tail analog)
  kEintr,           // the attempt is interrupted first (retry must succeed)
};
inline constexpr int kNumSyscallFaultKinds = 6;
const char* SyscallFaultKindName(SyscallFaultKind kind);

struct SyscallFaultPlan {
  // Independent per-call fire probabilities in [0, 1].
  double transient_read = 0;
  double transient_write = 0;
  double no_space = 0;
  double short_write = 0;
  double failed_sync = 0;
  double eintr = 0;
  uint64_t seed = 1;
  // Total firings across all classes; once spent, the disk behaves (lets a
  // soak inject a bounded storm and then verify the system recovers).
  uint64_t budget = UINT64_MAX;

  bool Any() const {
    return transient_read > 0 || transient_write > 0 || no_space > 0 || short_write > 0 ||
           failed_sync > 0 || eintr > 0;
  }

  // Parses "transient-read=0.01,no-space=0.02,failed-sync=0.001,seed=7".
  // Keys: the SyscallFaultKindName strings (aliases: enospc, fsync, short,
  // eio for transient-write+transient-read together), plus seed and budget.
  // kInvalid on unknown keys or unparsable values.
  static Result<SyscallFaultPlan> Parse(const std::string& spec);
  std::string ToString() const;
};

// Seeded fault-injecting implementation. Thread-safe: draws are serialized
// under a mutex (the rates, not the exact interleaving, are the contract —
// the server's thread schedule is already nondeterministic).
class FaultInjectingSyscalls : public FsSyscalls {
 public:
  explicit FaultInjectingSyscalls(SyscallFaultPlan plan);

  int OpenAt(int dirfd, const char* name, int flags, mode_t mode) override;
  ssize_t Write(int fd, const void* buf, size_t count) override;
  ssize_t Pread(int fd, void* buf, size_t count, off_t off) override;
  int Fsync(int fd) override;
  int Syncfs(int fd) override;
  int LinkAt(int src_dirfd, const char* src, int dst_dirfd, const char* dst) override;
  int UnlinkAt(int dirfd, const char* name) override;

  const SyscallFaultPlan& plan() const { return plan_; }
  uint64_t injected(SyscallFaultKind kind) const {
    return injected_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t total_injected() const;
  // One "kind=count kind=count ..." line for soak logs.
  std::string InjectedSummary() const;

 private:
  // Draws against `rate`; counts and consumes budget when it fires.
  bool Fire(SyscallFaultKind kind, double rate);

  SyscallFaultPlan plan_;
  std::mutex mu_;
  Rng rng_;
  std::atomic<uint64_t> budget_left_;
  std::array<std::atomic<uint64_t>, kNumSyscallFaultKinds> injected_{};
};

}  // namespace perennial::fault

#endif  // PERENNIAL_SRC_FAULT_SYSCALL_FAULT_H_
