#include "src/fault/syscall_fault.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace perennial::fault {

ssize_t FsSyscalls::Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}

ssize_t FsSyscalls::Pread(int fd, void* buf, size_t count, off_t off) {
  return ::pread(fd, buf, count, off);
}

int FsSyscalls::Fsync(int fd) { return ::fsync(fd); }

int FsSyscalls::Syncfs(int fd) { return ::syncfs(fd); }

int FsSyscalls::LinkAt(int src_dirfd, const char* src, int dst_dirfd, const char* dst) {
  return ::linkat(src_dirfd, src, dst_dirfd, dst, 0);
}

int FsSyscalls::UnlinkAt(int dirfd, const char* name) { return ::unlinkat(dirfd, name, 0); }

FsSyscalls* RealFsSyscalls() {
  static FsSyscalls real;
  return &real;
}

const char* SyscallFaultKindName(SyscallFaultKind kind) {
  switch (kind) {
    case SyscallFaultKind::kTransientRead:
      return "transient-read";
    case SyscallFaultKind::kTransientWrite:
      return "transient-write";
    case SyscallFaultKind::kNoSpace:
      return "no-space";
    case SyscallFaultKind::kShortWrite:
      return "short-write";
    case SyscallFaultKind::kFailedSync:
      return "failed-sync";
    case SyscallFaultKind::kEintr:
      return "eintr";
  }
  return "unknown-fault";
}

Result<SyscallFaultPlan> SyscallFaultPlan::Parse(const std::string& spec) {
  SyscallFaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string field = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) {
      continue;
    }
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("fault plan: expected key=value, got '" + field + "'");
    }
    std::string key = field.substr(0, eq);
    std::string val = field.substr(eq + 1);
    char* end = nullptr;
    if (key == "seed" || key == "budget") {
      uint64_t n = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0') {
        return Status::Invalid("fault plan: bad integer for " + key + ": '" + val + "'");
      }
      (key == "seed" ? plan.seed : plan.budget) = n;
      continue;
    }
    double rate = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || rate < 0 || rate > 1) {
      return Status::Invalid("fault plan: bad rate for " + key + ": '" + val + "'");
    }
    if (key == "transient-read") {
      plan.transient_read = rate;
    } else if (key == "transient-write") {
      plan.transient_write = rate;
    } else if (key == "eio") {
      plan.transient_read = rate;
      plan.transient_write = rate;
    } else if (key == "no-space" || key == "enospc") {
      plan.no_space = rate;
    } else if (key == "short-write" || key == "short") {
      plan.short_write = rate;
    } else if (key == "failed-sync" || key == "fsync") {
      plan.failed_sync = rate;
    } else if (key == "eintr") {
      plan.eintr = rate;
    } else {
      return Status::Invalid("fault plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string SyscallFaultPlan::ToString() const {
  std::string out;
  auto add = [&](const char* key, double rate) {
    if (rate <= 0) {
      return;
    }
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += '=';
    out += std::to_string(rate);
  };
  add("transient-read", transient_read);
  add("transient-write", transient_write);
  add("no-space", no_space);
  add("short-write", short_write);
  add("failed-sync", failed_sync);
  add("eintr", eintr);
  if (!out.empty()) {
    out += ',';
  }
  out += "seed=" + std::to_string(seed);
  if (budget != UINT64_MAX) {
    out += ",budget=" + std::to_string(budget);
  }
  return out;
}

FaultInjectingSyscalls::FaultInjectingSyscalls(SyscallFaultPlan plan)
    : plan_(plan), rng_(plan.seed * 6364136223846793005ULL + 1442695040888963407ULL),
      budget_left_(plan.budget) {}

bool FaultInjectingSyscalls::Fire(SyscallFaultKind kind, double rate) {
  if (rate <= 0) {
    return false;
  }
  if (budget_left_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  bool fires;
  {
    std::scoped_lock lock(mu_);
    fires = rng_.Chance(rate);
  }
  if (!fires) {
    return false;
  }
  // Claim one unit of budget; lose the race, lose the fault.
  uint64_t left = budget_left_.load(std::memory_order_relaxed);
  while (left > 0) {
    if (budget_left_.compare_exchange_weak(left, left - 1, std::memory_order_relaxed)) {
      injected_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

int FaultInjectingSyscalls::OpenAt(int dirfd, const char* name, int flags, mode_t mode) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if ((flags & O_CREAT) != 0 && Fire(SyscallFaultKind::kNoSpace, plan_.no_space)) {
    errno = ENOSPC;
    return -1;
  }
  return FsSyscalls::OpenAt(dirfd, name, flags, mode);
}

ssize_t FaultInjectingSyscalls::Write(int fd, const void* buf, size_t count) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if (Fire(SyscallFaultKind::kNoSpace, plan_.no_space)) {
    errno = ENOSPC;
    return -1;
  }
  if (Fire(SyscallFaultKind::kTransientWrite, plan_.transient_write)) {
    errno = EIO;
    return -1;
  }
  if (count >= 2 && Fire(SyscallFaultKind::kShortWrite, plan_.short_write)) {
    // Persist a strict prefix (never 0: a zero return would loop callers
    // forever, and real write() returns short-but-nonzero under pressure).
    uint64_t prefix;
    {
      std::scoped_lock lock(mu_);
      prefix = rng_.Range(1, count - 1);
    }
    return FsSyscalls::Write(fd, buf, static_cast<size_t>(prefix));
  }
  return FsSyscalls::Write(fd, buf, count);
}

ssize_t FaultInjectingSyscalls::Pread(int fd, void* buf, size_t count, off_t off) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if (Fire(SyscallFaultKind::kTransientRead, plan_.transient_read)) {
    errno = EIO;
    return -1;
  }
  return FsSyscalls::Pread(fd, buf, count, off);
}

int FaultInjectingSyscalls::Fsync(int fd) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if (Fire(SyscallFaultKind::kFailedSync, plan_.failed_sync)) {
    errno = EIO;
    return -1;
  }
  return FsSyscalls::Fsync(fd);
}

int FaultInjectingSyscalls::Syncfs(int fd) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if (Fire(SyscallFaultKind::kFailedSync, plan_.failed_sync)) {
    errno = EIO;
    return -1;
  }
  return FsSyscalls::Syncfs(fd);
}

int FaultInjectingSyscalls::LinkAt(int src_dirfd, const char* src, int dst_dirfd,
                                   const char* dst) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if (Fire(SyscallFaultKind::kNoSpace, plan_.no_space)) {
    errno = ENOSPC;
    return -1;
  }
  if (Fire(SyscallFaultKind::kTransientWrite, plan_.transient_write)) {
    errno = EIO;
    return -1;
  }
  return FsSyscalls::LinkAt(src_dirfd, src, dst_dirfd, dst);
}

int FaultInjectingSyscalls::UnlinkAt(int dirfd, const char* name) {
  if (Fire(SyscallFaultKind::kEintr, plan_.eintr)) {
    errno = EINTR;
    return -1;
  }
  if (Fire(SyscallFaultKind::kTransientWrite, plan_.transient_write)) {
    errno = EIO;
    return -1;
  }
  return FsSyscalls::UnlinkAt(dirfd, name);
}

uint64_t FaultInjectingSyscalls::total_injected() const {
  uint64_t n = 0;
  for (const auto& c : injected_) {
    n += c.load(std::memory_order_relaxed);
  }
  return n;
}

std::string FaultInjectingSyscalls::InjectedSummary() const {
  std::string out;
  for (int k = 0; k < kNumSyscallFaultKinds; ++k) {
    if (!out.empty()) {
      out += ' ';
    }
    out += SyscallFaultKindName(static_cast<SyscallFaultKind>(k));
    out += '=';
    out += std::to_string(injected_[static_cast<size_t>(k)].load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace perennial::fault
