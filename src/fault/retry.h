// Retry with bounded backoff, deterministic under the cooperative
// scheduler.
//
// Transient faults (StatusCode::kUnavailable) are the retryable class;
// fail-stop (kFailed) and programming errors (kInvalid) are not — retrying
// a dead disk forever would turn an environment event into nontermination.
// Backoff is realized as scheduler yields: each yield is one atomic step
// the explorer can interleave against, so "waiting longer" is modeled as
// giving other threads (and the environment) more chances to run, and the
// whole policy replays identically from a decision path. No wall-clock
// time is involved anywhere.
#ifndef PERENNIAL_SRC_FAULT_RETRY_H_
#define PERENNIAL_SRC_FAULT_RETRY_H_

#include <type_traits>
#include <utility>

#include "src/base/status.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::fault {

struct RetryPolicy {
  // 0 = retry until the operation stops returning kUnavailable. Safe in the
  // modeled environment because transient-fault budgets are finite; bound it
  // when modeling a caller that must give up.
  int max_attempts = 0;
  // Yields inserted before the second attempt; doubles per retry.
  int backoff_start = 1;
  // Backoff ceiling ("bounded backoff"): yields per wait never exceed this.
  int backoff_cap = 4;
};

inline bool IsRetryable(const Status& s) { return s.code() == StatusCode::kUnavailable; }
template <typename T>
bool IsRetryable(const Result<T>& r) {
  return r.status().code() == StatusCode::kUnavailable;
}

// Runs `op()` (a callable returning proc::Task<Status> or
// proc::Task<Result<T>>) until it returns anything other than kUnavailable
// or the attempt budget runs out; returns the last outcome either way.
//
// The callable is held by reference, not copied into the coroutine frame,
// so it must outlive the returned task. Awaiting the call directly —
// `co_await RetryWithBackoff(policy, [&]{ ... })` — satisfies this: the
// lambda temporary outlives the task temporary within the full expression.
template <typename F>
std::invoke_result_t<F&> RetryWithBackoff(RetryPolicy policy, F&& op) {
  int backoff = policy.backoff_start > 0 ? policy.backoff_start : 1;
  int attempt = 1;
  while (true) {
    auto outcome = co_await op();
    if (!IsRetryable(outcome) || (policy.max_attempts > 0 && attempt >= policy.max_attempts)) {
      co_return outcome;
    }
    for (int i = 0; i < backoff; ++i) {
      co_await proc::Yield();
      proc::RecordPure();  // backoff steps only advance loop-local counters
    }
    if (backoff < policy.backoff_cap) {
      backoff = backoff * 2 < policy.backoff_cap ? backoff * 2 : policy.backoff_cap;
    }
    ++attempt;
  }
}

}  // namespace perennial::fault

#endif  // PERENNIAL_SRC_FAULT_RETRY_H_
