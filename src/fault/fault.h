// Environment fault injection: the fault classes beyond whole-machine
// crashes and fail-stop disk death.
//
// The paper's environment model (Figure 1, §6.2) injects crashes between
// atomic steps and permanent disk failures. Real storage also exhibits
//   * transient I/O errors — a read or write fails once and succeeds when
//     retried (loose cables, controller timeouts);
//   * torn writes — a multi-sector write interrupted by power loss persists
//     only a prefix of its bytes;
//   * fail-slow devices — an operation completes, but late;
//   * unsynced-data loss — page-cache contents newer than the last sync
//     survive a crash only partially.
//
// Determinism contract. Every fault is *armed* by an explorer environment
// alternative (refine::EnvEvent, AltKind::kEnv) and *consumed* by the next
// matching device operation. Both halves are pure functions of the decision
// path: the explorer chooses where the arm lands between atomic steps, and
// the scheduler determines which operation is "next". The DFS explorer
// therefore enumerates fault placements exactly like crash points, the
// ParallelExplorer partitions them with the same prefix scheme, and the
// RandomDriver samples them with ExplorerOptions::env_probability. No fault
// ever fires from wall-clock time or unseeded randomness.
#ifndef PERENNIAL_SRC_FAULT_FAULT_H_
#define PERENNIAL_SRC_FAULT_FAULT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace perennial::fault {

enum class FaultKind {
  kTransientRead,   // next matching read returns kUnavailable
  kTransientWrite,  // next matching write returns kUnavailable, nothing lands
  kTornWrite,       // next matching write persists only a prefix at a crash
  kFailSlow,        // next matching operation is delayed by extra yields
  kUnsyncedTail,    // next crash keeps part of each file's unsynced tail
};
inline constexpr int kNumFaultKinds = 5;

// "torn-write", "transient-read", ... (stable names used in event labels,
// bench output, and traces).
const char* FaultKindName(FaultKind kind);

// What an environment may do to a system: per-class budgets (how many times
// the explorer may arm each fault) plus shape parameters. A default
// FaultPlan has every budget at zero — no faults, no env alternatives, no
// per-operation overhead.
struct FaultPlan {
  // Matches any disk id (FaultyDisk's constructor argument).
  static constexpr int kAnyDisk = -1;

  int transient_reads = 0;
  int transient_writes = 0;
  int torn_writes = 0;
  int fail_slow = 0;
  int unsynced_tail = 0;

  // Which disk the armed faults aim at (kAnyDisk: whichever device performs
  // the next matching operation).
  int target = kAnyDisk;

  // Bytes of the interrupted write that persist. 0 = half the block,
  // modeling a tear at the sector boundary of a two-sector block.
  uint64_t torn_prefix_bytes = 0;
  // Blocks below this index never tear: they model single-sector metadata
  // (e.g. a log header) that the hardware writes atomically. Torn faults
  // stay armed across non-tearable writes.
  uint64_t torn_min_block = 0;

  // Scheduler yields a fail-slow fault inserts before the operation runs.
  int fail_slow_delay = 3;

  bool AnyBudget() const {
    return transient_reads > 0 || transient_writes > 0 || torn_writes > 0 || fail_slow > 0 ||
           unsynced_tail > 0;
  }
};

// Shared, per-execution fault state: the environment side (explorer env
// events) arms faults, the device side (FaultyDisk, GooseFs) consumes them.
// Owned by the harness bundle so each refine::Instance gets a fresh one —
// that keeps schedule state a pure function of the decision path, which is
// what the deterministic-factory contract requires.
class FaultSchedule {
 public:
  static constexpr int kAnyDisk = FaultPlan::kAnyDisk;

  explicit FaultSchedule(FaultPlan plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  // Environment side: arm one fault of `kind` aimed at `target`. Armed
  // faults stack (arming twice faults the next two matching operations) and
  // survive crashes — the environment's intent is not machine state.
  void Arm(FaultKind kind, int target);

  // Device side: consume the oldest armed fault matching (kind, disk_id).
  // Returns true exactly when a fault fires.
  bool Consume(FaultKind kind, int disk_id);

  // Whether a torn fault may strike block `a` (see FaultPlan::torn_min_block).
  bool TornApplies(uint64_t block) const { return block >= plan_.torn_min_block; }

  // Persisted prefix length for a torn write of `block_size` bytes.
  uint64_t TornPrefixBytes(uint64_t block_size) const;

  // Introspection (tests, bench): currently armed / total consumed.
  uint64_t armed(FaultKind kind) const;
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)];
  }
  uint64_t total_injected() const;

 private:
  struct ArmedFault {
    FaultKind kind;
    int target;
  };

  FaultPlan plan_;
  std::vector<ArmedFault> armed_;
  std::array<uint64_t, kNumFaultKinds> injected_{};
};

}  // namespace perennial::fault

#endif  // PERENNIAL_SRC_FAULT_FAULT_H_
