#include "src/fault/faulty_disk.h"

#include <string>
#include <utility>

namespace perennial::fault {

proc::Task<Result<disk::Block>> FaultyDisk::Read(uint64_t a) {
  if (faults_ != nullptr && !failed() && a < size()) {
    if (faults_->Consume(FaultKind::kFailSlow, disk_id_)) {
      for (int i = 0; i < faults_->plan().fail_slow_delay; ++i) {
        co_await proc::Yield();
        proc::RecordPure();  // the delay step itself touches nothing shared
      }
    }
    if (faults_->Consume(FaultKind::kTransientRead, disk_id_)) {
      co_await proc::Yield();
      proc::RecordPure();  // the error return reaches only caller-local state
      co_return Status::Unavailable("transient read fault at block " + std::to_string(a));
    }
  }
  co_return co_await disk::Disk::Read(a);
}

proc::Task<Status> FaultyDisk::Write(uint64_t a, disk::Block value) {
  if (faults_ != nullptr && !failed() && a < size()) {
    if (faults_->Consume(FaultKind::kFailSlow, disk_id_)) {
      for (int i = 0; i < faults_->plan().fail_slow_delay; ++i) {
        co_await proc::Yield();
        proc::RecordPure();
      }
    }
    if (faults_->Consume(FaultKind::kTransientWrite, disk_id_)) {
      co_await proc::Yield();
      proc::RecordPure();
      co_return Status::Unavailable("transient write fault at block " + std::to_string(a));
    }
    if (faults_->TornApplies(a) && faults_->Consume(FaultKind::kTornWrite, disk_id_)) {
      // Capture the current durable image before the write lands: a prior
      // pending tear of the same block is the durable truth, not memory.
      disk::Block durable = torn_.count(a) != 0 ? torn_[a] : PeekBlock(a);
      disk::Block torn_image = std::move(durable);
      torn_image.resize(value.size(), 0);
      const uint64_t prefix = faults_->TornPrefixBytes(value.size());
      for (uint64_t i = 0; i < prefix && i < value.size(); ++i) {
        torn_image[i] = value[i];
      }
      Status s = co_await disk::Disk::Write(a, std::move(value));
      proc::RecordAccess(torn_res_, /*write=*/true);
      if (s.ok()) {
        torn_[a] = std::move(torn_image);
      }
      co_return s;
    }
  }
  Status s = co_await disk::Disk::Write(a, std::move(value));
  if (TornPossible()) {
    // Overwrites clear pending tears, so with torn faults in play every
    // write orders against Barrier and against torn writes of any block.
    proc::RecordAccess(torn_res_, /*write=*/true);
  }
  if (s.ok()) {
    // A fresh, un-torn overwrite supersedes any pending tear: the whole
    // block is atomically durable again.
    torn_.erase(a);
  }
  co_return s;
}

proc::Task<Status> FaultyDisk::Barrier() {
  co_await proc::Yield();
  if (TornPossible()) {
    proc::RecordAccess(torn_res_, /*write=*/true);
    // Flushing pending tears changes the image a crash would leave, which
    // crash invariants observe via PeekDurable.
    proc::RecordAccess(proc::MixResource(proc::kResInvariant, 0), /*write=*/true);
  } else {
    proc::RecordPure();
  }
  torn_.clear();
  co_return Status::Ok();
}

void FaultyDisk::OnCrash() {
  for (auto& [a, image] : torn_) {
    PokeBlock(a, std::move(image));
  }
  torn_.clear();
  disk::Disk::OnCrash();
}

disk::Block FaultyDisk::PeekDurable(uint64_t a) const {
  auto it = torn_.find(a);
  if (it != torn_.end()) {
    return it->second;
  }
  return PeekBlock(a);
}

}  // namespace perennial::fault
