#include "src/fault/fault.h"

#include "src/base/panic.h"

namespace perennial::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientRead:
      return "transient-read";
    case FaultKind::kTransientWrite:
      return "transient-write";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kFailSlow:
      return "fail-slow";
    case FaultKind::kUnsyncedTail:
      return "unsynced-tail";
  }
  return "unknown-fault";
}

void FaultSchedule::Arm(FaultKind kind, int target) {
  armed_.push_back(ArmedFault{kind, target});
}

bool FaultSchedule::Consume(FaultKind kind, int disk_id) {
  for (auto it = armed_.begin(); it != armed_.end(); ++it) {
    if (it->kind != kind) {
      continue;
    }
    if (it->target != kAnyDisk && it->target != disk_id) {
      continue;
    }
    armed_.erase(it);
    ++injected_[static_cast<size_t>(kind)];
    return true;
  }
  return false;
}

uint64_t FaultSchedule::TornPrefixBytes(uint64_t block_size) const {
  if (plan_.torn_prefix_bytes == 0) {
    return block_size / 2;
  }
  return plan_.torn_prefix_bytes < block_size ? plan_.torn_prefix_bytes : block_size;
}

uint64_t FaultSchedule::armed(FaultKind kind) const {
  uint64_t n = 0;
  for (const ArmedFault& f : armed_) {
    if (f.kind == kind) {
      ++n;
    }
  }
  return n;
}

uint64_t FaultSchedule::total_injected() const {
  uint64_t n = 0;
  for (uint64_t k : injected_) {
    n += k;
  }
  return n;
}

}  // namespace perennial::fault
