#include "src/fault/fault.h"

#include "src/base/panic.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"

namespace perennial::fault {

namespace {
// FaultSchedule has no World pointer, so slots are keyed globally per kind.
// That merges slots across schedules, which only adds dependence edges — a
// sound (and in practice free: one schedule per execution) coarsening.
uint64_t SlotRes(FaultKind kind) {
  return proc::MixResource(proc::kResFaultSlot, static_cast<uint64_t>(kind));
}
}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientRead:
      return "transient-read";
    case FaultKind::kTransientWrite:
      return "transient-write";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kFailSlow:
      return "fail-slow";
    case FaultKind::kUnsyncedTail:
      return "unsynced-tail";
  }
  return "unknown-fault";
}

void FaultSchedule::Arm(FaultKind kind, int target) {
  proc::RecordAccess(SlotRes(kind), /*write=*/true);
  armed_.push_back(ArmedFault{kind, target});
}

bool FaultSchedule::Consume(FaultKind kind, int disk_id) {
  // Always at least a read: whether a fault fires depends on the armed list,
  // so a consuming step orders against every Arm of the same kind.
  proc::RecordAccess(SlotRes(kind), /*write=*/false);
  for (auto it = armed_.begin(); it != armed_.end(); ++it) {
    if (it->kind != kind) {
      continue;
    }
    if (it->target != kAnyDisk && it->target != disk_id) {
      continue;
    }
    proc::RecordAccess(SlotRes(kind), /*write=*/true);  // fired: slot state changed
    armed_.erase(it);
    ++injected_[static_cast<size_t>(kind)];
    return true;
  }
  return false;
}

uint64_t FaultSchedule::TornPrefixBytes(uint64_t block_size) const {
  if (plan_.torn_prefix_bytes == 0) {
    return block_size / 2;
  }
  return plan_.torn_prefix_bytes < block_size ? plan_.torn_prefix_bytes : block_size;
}

uint64_t FaultSchedule::armed(FaultKind kind) const {
  uint64_t n = 0;
  for (const ArmedFault& f : armed_) {
    if (f.kind == kind) {
      ++n;
    }
  }
  return n;
}

uint64_t FaultSchedule::total_injected() const {
  uint64_t n = 0;
  for (uint64_t k : injected_) {
    n += k;
  }
  return n;
}

}  // namespace perennial::fault
