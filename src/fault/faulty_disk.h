// FaultyDisk: the block-device decorator that realizes FaultSchedule's
// fault classes on top of the paper's disk model (src/disk/disk.h).
//
// Semantics relative to a plain Disk:
//   * transient read/write — the operation returns kUnavailable and has no
//     effect; a retry (or any later attempt) succeeds. Distinct from
//     fail-stop Fail(), which returns kFailed forever.
//   * torn write — the write lands in memory (later reads observe the full
//     new value, exactly like a page-cache hit), but until the next
//     Barrier() — or a fresh overwrite of the same block — a crash persists
//     only the first TornPrefixBytes of it, with the rest of the block
//     keeping its previous durable image. This is the multi-sector-write
//     model SquirrelFS-style checkers use: sectors persist in order, and
//     power loss can strike between them.
//   * fail-slow — the operation completes correctly after extra scheduler
//     yields, widening the window other threads can race into.
//
// Barrier() models a write barrier / cache flush: every pending torn image
// becomes fully durable. A plain Disk needs no barrier because its writes
// are atomically durable; code written against FaultyDisk that orders its
// durability with Barrier() is exactly the code that survives torn writes.
//
// A FaultyDisk with a null schedule behaves bit-for-bit like Disk (and
// costs one branch per operation), so systems can hold a FaultyDisk member
// unconditionally and stay on the fault-free fast path by default.
#ifndef PERENNIAL_SRC_FAULT_FAULTY_DISK_H_
#define PERENNIAL_SRC_FAULT_FAULTY_DISK_H_

#include <cstdint>
#include <map>

#include "src/disk/disk.h"
#include "src/fault/fault.h"

namespace perennial::fault {

class FaultyDisk : public disk::Disk {
 public:
  // `disk_id` identifies this device for FaultPlan::target matching (the
  // replicated disk uses 1 and 2 to mirror d1/d2).
  FaultyDisk(goose::World* world, uint64_t num_blocks, disk::Block initial,
             FaultSchedule* faults = nullptr, int disk_id = 0)
      : disk::Disk(world, num_blocks, std::move(initial)),
        torn_res_(proc::MixResource(proc::kResTornMeta, world->NextResourceId())),
        faults_(faults),
        disk_id_(disk_id) {}

  proc::Task<Result<disk::Block>> Read(uint64_t a) override;
  proc::Task<Status> Write(uint64_t a, disk::Block value) override;

  // Write barrier: all torn-pending writes become fully durable. The
  // modeled barrier always succeeds; the Status return exists so code
  // written against BlockDev also handles real fsync failure (PosixDisk).
  proc::Task<Status> Barrier() override;

  // Crash: torn-pending blocks revert to their torn durable image; armed
  // faults and fail-stop state are untouched (Disk::OnCrash is a no-op).
  void OnCrash() override;

  // Harness-only: the image a crash right now would leave at `a`.
  disk::Block PeekDurable(uint64_t a) const;
  bool HasTornPending() const { return !torn_.empty(); }

 private:
  // True when torn writes are in play, i.e. the torn_ map can ever be
  // non-empty; only then do operations pay the torn-metadata footprint.
  bool TornPossible() const { return faults_ != nullptr && faults_->plan().torn_writes > 0; }

  uint64_t torn_res_;  // DPOR resource covering the torn_ pending map
  FaultSchedule* faults_;
  int disk_id_;
  // Block -> durable image while a torn write is pending (cleared by
  // Barrier, overwrite, or crash).
  std::map<uint64_t, disk::Block> torn_;
};

}  // namespace perennial::fault

#endif  // PERENNIAL_SRC_FAULT_FAULTY_DISK_H_
