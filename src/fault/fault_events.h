// Bridge from FaultPlan to the explorer: one refine::EnvEvent per fault
// class with a non-zero budget, so every armable fault shows up as an
// AltKind::kEnv alternative at every decision point. The event's budget is
// the plan's budget, enforced by the explorer's per-execution env_budget —
// the same machinery that bounds fail-stop disk failures, which is what
// makes serial DFS, ParallelExplorer prefix partitioning, and RandomDriver
// sampling (env_probability) all cover fault placements without new code.
#ifndef PERENNIAL_SRC_FAULT_FAULT_EVENTS_H_
#define PERENNIAL_SRC_FAULT_FAULT_EVENTS_H_

#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/refine/explorer.h"

namespace perennial::fault {

inline std::vector<refine::EnvEvent> MakeFaultEvents(const FaultPlan& plan,
                                                     FaultSchedule* schedule) {
  std::vector<refine::EnvEvent> events;
  const std::string target_suffix =
      plan.target == FaultPlan::kAnyDisk ? "" : "@d" + std::to_string(plan.target);
  auto add = [&](FaultKind kind, int budget) {
    if (budget <= 0) {
      return;
    }
    events.push_back(refine::EnvEvent{
        "fault:" + std::string(FaultKindName(kind)) + target_suffix, budget,
        [schedule, kind, target = plan.target] { schedule->Arm(kind, target); }});
  };
  add(FaultKind::kTransientRead, plan.transient_reads);
  add(FaultKind::kTransientWrite, plan.transient_writes);
  add(FaultKind::kTornWrite, plan.torn_writes);
  add(FaultKind::kFailSlow, plan.fail_slow);
  add(FaultKind::kUnsyncedTail, plan.unsynced_tail);
  return events;
}

// Appends the plan's events to an instance's env_events (the common harness
// call site).
template <typename Instance>
void AddFaultEvents(const FaultPlan& plan, FaultSchedule* schedule, Instance* inst) {
  for (refine::EnvEvent& e : MakeFaultEvents(plan, schedule)) {
    inst->env_events.push_back(std::move(e));
  }
}

}  // namespace perennial::fault

#endif  // PERENNIAL_SRC_FAULT_FAULT_EVENTS_H_
