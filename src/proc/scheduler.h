// Deterministic cooperative scheduler for modeled Goose threads.
//
// The scheduler owns a set of root coroutines ("threads"). It never decides
// anything itself: callers (the refinement checker's schedule explorers)
// repeatedly ask which threads are runnable and then Step() one of them.
// A step runs a thread up to its next scheduling point (Yield/Block) or to
// completion. This externalized choice is what lets the checker enumerate
// interleavings exhaustively and inject crashes between any two steps.
//
// Crash semantics (§5.2): KillAllThreads() destroys every coroutine frame
// without running any modeled effects — modeled code performs effects only
// through explicit operations, never in destructors — mirroring a machine
// that stops executing instantly. Volatile state reset is the Goose world's
// job (src/goose), not the scheduler's.
#ifndef PERENNIAL_SRC_PROC_SCHEDULER_H_
#define PERENNIAL_SRC_PROC_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "src/proc/footprint.h"
#include "src/proc/task.h"

namespace perennial::proc {

class Scheduler {
 public:
  using Tid = int;
  static constexpr Tid kInvalidTid = -1;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Adds a thread; it becomes runnable but does not start until stepped.
  // Callable both from outside and from within a running thread (the `go`
  // statement).
  Tid Spawn(Task<void> task, std::string name = "");

  // Runs thread `tid` until its next scheduling point or completion.
  // Returns true if the thread completed during this step. If the thread
  // body threw (e.g. UbViolation), the exception propagates to the caller.
  bool Step(Tid tid);

  // Threads that can be stepped right now (spawned, not done, not blocked).
  std::vector<Tid> RunnableThreads() const;
  // Non-allocating predicate: the explorer asks this (via Deadlocked) at
  // every decision point, where materializing the RunnableThreads vector
  // would be a heap allocation per query.
  bool HasRunnable() const {
    for (const Thread& t : threads_) {
      if (!t.done && !t.blocked) {
        return true;
      }
    }
    return false;
  }

  bool AllDone() const;
  // True when some thread is still live but nothing can run: a deadlock in
  // the modeled program (the checker reports this as a violation).
  bool Deadlocked() const { return !AllDone() && !HasRunnable(); }

  bool IsDone(Tid tid) const;

  // Blocking support for modeled mutexes/condvars. Block marks the current
  // state; the thread will not appear runnable until Unblock.
  void Block(Tid tid);
  void Unblock(Tid tid);

  // The thread currently executing inside Step (kInvalidTid outside).
  Tid current_tid() const { return current_; }

  // Total Step() calls so far — the explorer's depth metric.
  uint64_t steps() const { return steps_; }

  // Crash: destroys every coroutine frame. No modeled effects run.
  void KillAllThreads();

  size_t thread_count() const { return threads_.size(); }
  const std::string& thread_name(Tid tid) const;

  // Called by the Yield/Block awaitables to record where to resume.
  void SetResumePoint(std::coroutine_handle<> h);

  // ---- Access-footprint collection (DPOR; see footprint.h) ----
  // Off by default so native runs and non-POR exploration pay nothing.
  void EnableFootprintCollection(bool on) { collect_footprints_ = on; }
  bool collecting_footprints() const { return collect_footprints_; }
  // Opens a collection window outside Step() — the explorer wraps each
  // environment-event firing in one so env alternatives get footprints too.
  void BeginExternalFootprint() { footprint_.Clear(); }
  // The footprint of the last Step() (or external window). Valid until the
  // next Step/BeginExternalFootprint.
  const Footprint& last_footprint() const { return footprint_; }
  // Merges one access into the current footprint (via proc::RecordAccess).
  void RecordFootprintAccess(uint64_t resource, bool write);
  void RecordFootprintPure() { footprint_.recorded = true; }
  void RecordFootprintOpaque() {
    footprint_.recorded = true;
    footprint_.opaque = true;
  }

 private:
  struct Thread {
    Task<void> task;
    std::coroutine_handle<> resume_point = nullptr;
    std::string name;
    bool done = false;
    bool blocked = false;
  };

  std::vector<Thread> threads_;
  Tid current_ = kInvalidTid;
  uint64_t steps_ = 0;
  bool tearing_down_ = false;
  bool collect_footprints_ = false;
  Footprint footprint_;
};

// The scheduler installed on this OS thread, or nullptr in native mode.
Scheduler* CurrentScheduler();

// RAII installation of a scheduler for the current OS thread.
class SchedulerScope {
 public:
  explicit SchedulerScope(Scheduler* sched);
  ~SchedulerScope();
  SchedulerScope(const SchedulerScope&) = delete;
  SchedulerScope& operator=(const SchedulerScope&) = delete;

 private:
  Scheduler* previous_;
};

// A scheduling point. In native mode (no scheduler) this never suspends.
struct YieldAwaiter {
  bool await_ready() const noexcept { return CurrentScheduler() == nullptr; }
  void await_suspend(std::coroutine_handle<> h) const { CurrentScheduler()->SetResumePoint(h); }
  void await_resume() const noexcept {}
};
inline YieldAwaiter Yield() { return {}; }

// Suspends the current thread as blocked; some other thread must Unblock it.
// Only meaningful in simulated mode; modeled mutexes branch before using it.
struct BlockAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    Scheduler* sched = CurrentScheduler();
    sched->SetResumePoint(h);
    sched->Block(sched->current_tid());
  }
  void await_resume() const noexcept {}
};
inline BlockAwaiter BlockCurrentThread() { return {}; }

}  // namespace perennial::proc

#endif  // PERENNIAL_SRC_PROC_SCHEDULER_H_
