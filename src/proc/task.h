// Coroutine task type for modeled Goose procedures.
//
// Every Goose procedure in this codebase is a coroutine returning
// proc::Task<T>. A Task is lazy: it runs only when awaited (or when the
// scheduler resumes a spawned root). Completion uses symmetric transfer to
// the awaiting coroutine, so arbitrarily deep call chains cost no stack.
//
// The same coroutine code runs in two modes:
//  * Simulated: a Scheduler is installed (per OS thread); every Yield()
//    suspension is a scheduling decision the checker controls.
//  * Native: no Scheduler installed; Yield() never suspends and the
//    coroutine runs straight through, giving benchmark-grade execution of
//    the very same procedure bodies.
#ifndef PERENNIAL_SRC_PROC_TASK_H_
#define PERENNIAL_SRC_PROC_TASK_H_

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "src/base/panic.h"
#include "src/proc/frame_alloc.h"

namespace perennial::proc {

template <typename T>
class Task;

namespace detail {

// Shared promise behavior: continuation plumbing + exception capture.
template <typename Promise>
struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation = nullptr;
  std::exception_ptr exception = nullptr;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }

  // Frames recycle through per-thread freelists (see frame_alloc.h): a
  // request runs ~a dozen short-lived Goose-procedure frames, which made
  // malloc a measurable share of netserv's per-request CPU.
  static void* operator new(size_t n) { return framealloc::Allocate(n); }
  static void operator delete(void* p) { framealloc::Deallocate(p); }
};

}  // namespace detail

// Awaiting a Task<T> starts the child and transfers control to it; when the
// child finishes, control transfers back and the value (or exception) is
// delivered.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase<T> {
    std::variant<std::monostate, T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_value(T v) { value.template emplace<T>(std::move(v)); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // For the scheduler: raw access to the root coroutine.
  std::coroutine_handle<promise_type> handle() const { return handle_; }

  // After done(): rethrows a captured exception, if any.
  void RethrowIfFailed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  // After done(): moves the result out.
  T TakeResult() {
    RethrowIfFailed();
    PCC_ENSURE(std::holds_alternative<T>(handle_.promise().value), "Task: no result");
    return std::move(std::get<T>(handle_.promise().value));
  }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      T await_resume() {
        if (child.promise().exception) {
          std::rethrow_exception(child.promise().exception);
        }
        return std::move(std::get<T>(child.promise().value));
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }
  std::coroutine_handle<promise_type> handle() const { return handle_; }

  void RethrowIfFailed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() {
        if (child.promise().exception) {
          std::rethrow_exception(child.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_ = nullptr;
};

// Runs a task to completion assuming it never suspends at a scheduling
// point (native mode: no Scheduler installed). Returns its value.
template <typename T>
T RunSync(Task<T> task) {
  task.handle().resume();
  PCC_ENSURE(task.done(), "RunSync: task suspended but no scheduler is installed");
  return task.TakeResult();
}
void RunSyncVoid(Task<void> task);

}  // namespace perennial::proc

#endif  // PERENNIAL_SRC_PROC_TASK_H_
