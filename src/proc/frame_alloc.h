// Freelist allocator for coroutine frames.
//
// Every Goose procedure call heap-allocates a coroutine frame, and a single
// mail delivery runs ~a dozen of them (Deliver -> DeliverChunked -> one
// Create/Append/Sync/Close/Link/Delete each, plus chunk readers). On the
// netserv hot path that made the general-purpose allocator a per-request
// cost. Frames are small (a few hundred bytes) and live briefly, so they
// recycle perfectly: Task<T>::promise_type routes its operator new/delete
// here, into per-thread size-bucketed freelists.
//
// Design constraints:
//  * Frames can be destroyed on a different thread than the one that
//    allocated them (an executor finishes a session another executor
//    started). Deallocate therefore pushes onto the *current* thread's
//    list — no sharing, no locks, no atomics. Cross-thread handoff of the
//    frame itself is synchronized by whatever passed the Task across
//    (work queues, scheduler), exactly as with malloc.
//  * Each block keeps its bucket index in a 16-byte header so frames keep
//    the default operator-new alignment guarantee.
//  * Under TSan/ASan the freelist is disabled entirely and frames come
//    from plain operator new, so sanitizers see every frame birth/death.
#ifndef PERENNIAL_SRC_PROC_FRAME_ALLOC_H_
#define PERENNIAL_SRC_PROC_FRAME_ALLOC_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace perennial::proc::framealloc {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    defined(PCC_NO_FRAME_FREELIST)
constexpr bool kEnabled = false;
#else
constexpr bool kEnabled = true;
#endif

// Bucket layout: 64-byte steps up to 1 KiB covers nearly every Task frame
// in the tree; larger frames fall through to the system allocator.
constexpr size_t kAlign = 16;          // header size; preserves new-alignment
constexpr size_t kStep = 64;
constexpr size_t kMaxBucketed = 1024;  // payload bytes
constexpr size_t kNumBuckets = kMaxBucketed / kStep;
constexpr size_t kMaxPerBucket = 128;  // blocks cached per thread per bucket

namespace detail {

struct FreeNode {
  FreeNode* next;
};

struct BucketList {
  FreeNode* head = nullptr;
  size_t count = 0;
};

struct ThreadCache {
  BucketList buckets[kNumBuckets];
  ~ThreadCache() {
    for (BucketList& b : buckets) {
      while (b.head != nullptr) {
        FreeNode* n = b.head;
        b.head = n->next;
        ::operator delete(n);
      }
    }
  }
};

inline ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace detail

inline void* Allocate(size_t n) {
  if constexpr (!kEnabled) {
    return ::operator new(n);
  }
  // Bucket by payload size rounded up to the step; remember the bucket in
  // the header. Oversized frames get bucket index kNumBuckets (uncached).
  size_t bucket = (n + kStep - 1) / kStep - 1;
  if (bucket >= kNumBuckets) {
    char* raw = static_cast<char*>(::operator new(n + kAlign));
    *reinterpret_cast<uint64_t*>(raw) = kNumBuckets;
    return raw + kAlign;
  }
  detail::BucketList& list = detail::Cache().buckets[bucket];
  char* raw;
  if (list.head != nullptr) {
    raw = reinterpret_cast<char*>(list.head);
    list.head = list.head->next;
    --list.count;
  } else {
    raw = static_cast<char*>(::operator new((bucket + 1) * kStep + kAlign));
  }
  *reinterpret_cast<uint64_t*>(raw) = bucket;
  return raw + kAlign;
}

inline void Deallocate(void* p) {
  if constexpr (!kEnabled) {
    ::operator delete(p);
    return;
  }
  char* raw = static_cast<char*>(p) - kAlign;
  uint64_t bucket = *reinterpret_cast<uint64_t*>(raw);
  if (bucket >= kNumBuckets) {
    ::operator delete(raw);
    return;
  }
  detail::BucketList& list = detail::Cache().buckets[bucket];
  if (list.count >= kMaxPerBucket) {
    ::operator delete(raw);
    return;
  }
  auto* node = reinterpret_cast<detail::FreeNode*>(raw);
  node->next = list.head;
  list.head = node;
  ++list.count;
}

}  // namespace perennial::proc::framealloc

#endif  // PERENNIAL_SRC_PROC_FRAME_ALLOC_H_
