// Per-step access footprints for dynamic partial-order reduction.
//
// Every atomic step of a modeled thread (and every environment-event
// firing) can *annotate* itself with the shared resources it read or
// wrote: heap cells, disk sectors, lock words, fault slots, registry
// entries. The explorer's sleep-set DPOR pass (refine/explorer.h) uses
// these footprints as its independence relation — two steps commute iff
// their footprints are disjoint on writes.
//
// The design is opaque-by-default, which is what makes it sound for a
// codebase where not every primitive is annotated: a step that recorded
// *nothing* is treated as conflicting with everything (no pruning around
// it), so forgetting an annotation can only cost performance, never
// soundness. A step that touches no shared state at all (e.g. a backoff
// spin) says so explicitly with RecordPure(); a primitive whose effects
// are deliberately unmodeled (e.g. the Goose file system) calls
// RecordOpaque() so that *other* annotations in the same step cannot make
// it look transparent.
//
// Resource identifiers are 64-bit hashes of (domain, a, b) triples.
// Collisions merge two resources into one — which only ever *adds*
// dependence edges, so they too are sound (just pessimal).
#ifndef PERENNIAL_SRC_PROC_FOOTPRINT_H_
#define PERENNIAL_SRC_PROC_FOOTPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perennial::proc {

// Resource domains: the first hash input, so that e.g. disk sector 3 and
// heap cell 3 never alias by construction (up to hash collisions).
enum ResourceDomain : uint64_t {
  kResHeapCell = 1,   // (cell id, crash generation)
  kResHeapAlloc,      // the heap allocator itself (New/NewSlice/...)
  kResDiskSector,     // (disk instance, sector)
  kResDiskMeta,       // per-disk failed() flag
  kResTornMeta,       // per-disk pending torn-write images + Barrier
  kResFaultSlot,      // per-fault-kind armed-fault list
  kResSync,           // one per Mutex/RWMutex/Chan/Cond/WaitGroup/Atomic
  kResHistory,        // the linearizability history (Invoke/Return/...)
  kResRegistry,       // (registry instance, hashed string key)
  kResInvariant,      // everything registered crash invariants observe
  // GooseFs resources (one `a` seed per file-system instance). The scheme
  // is documented in DESIGN.md §10; inode and fd numbers are never reused
  // across crashes (the counters survive OnCrash), so unlike heap cells
  // these ids need no crash-generation component.
  kResFsAlloc,        // the ino/fd counters (Create/Open number their results)
  kResFsDir,          // (fs instance, dir) — directory membership, read by List
  kResFsEntry,        // (fs instance, dir/name) — one directory entry
  kResFsInode,        // (fs instance, ino) — data + nlink + open-fd count
  kResFsTail,         // (fs instance, ino) — the synced-length watermark
  kResFsFd,           // (fs instance, fd) — one descriptor slot
  kResRng,            // a shared deterministic id pool (Mailboat's rng)
};

// SplitMix64-style mix of a (domain, a, b) triple into a resource id.
constexpr uint64_t MixResource(uint64_t domain, uint64_t a, uint64_t b = 0) {
  uint64_t x = domain * 0x9E3779B97F4A7C15ull;
  x ^= a + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
  x ^= b + 0xBF58476D1CE4E5B9ull + (x << 6) + (x >> 2);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// FNV-1a for string-keyed resources (help/lease registry keys).
inline uint64_t MixResourceKey(uint64_t domain, uint64_t instance, const std::string& key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
  }
  return MixResource(domain, instance, h);
}

// The accesses one atomic step performed. `recorded` distinguishes "this
// step annotated itself" (possibly with zero accesses: pure) from "this
// step ran unannotated code" (opaque-by-default). `opaque` is the sticky
// override for deliberately unmodeled effects.
struct Footprint {
  struct Access {
    uint64_t resource = 0;
    bool write = false;
  };

  bool recorded = false;
  bool opaque = false;
  std::vector<Access> accesses;

  void Clear() {
    recorded = false;
    opaque = false;
    accesses.clear();
  }
};

// A footprint participates in independence reasoning only when it was
// annotated and not forced opaque.
inline bool FootprintTransparent(const Footprint& f) { return f.recorded && !f.opaque; }

// Conservative dependence: any untracked step conflicts with everything;
// tracked steps conflict iff they share a resource at least one writes.
inline bool FootprintsConflict(const Footprint& a, const Footprint& b) {
  if (!FootprintTransparent(a) || !FootprintTransparent(b)) {
    return true;
  }
  for (const Footprint::Access& x : a.accesses) {
    for (const Footprint::Access& y : b.accesses) {
      if (x.resource == y.resource && (x.write || y.write)) {
        return true;
      }
    }
  }
  return false;
}

// Annotation entry points, callable from anywhere inside modeled code.
// No-ops outside a collecting scheduler step (native mode, harness code,
// factory construction), so primitives can call them unconditionally.
void RecordAccess(uint64_t resource, bool write);
void RecordPure();    // "this step touched no shared state"
void RecordOpaque();  // "this step has effects footprints cannot see"

}  // namespace perennial::proc

#endif  // PERENNIAL_SRC_PROC_FOOTPRINT_H_
