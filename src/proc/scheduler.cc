#include "src/proc/scheduler.h"

#include <utility>

namespace perennial::proc {

namespace {
thread_local Scheduler* g_current_scheduler = nullptr;
}  // namespace

Scheduler* CurrentScheduler() { return g_current_scheduler; }

SchedulerScope::SchedulerScope(Scheduler* sched) : previous_(g_current_scheduler) {
  g_current_scheduler = sched;
}

SchedulerScope::~SchedulerScope() { g_current_scheduler = previous_; }

Scheduler::Tid Scheduler::Spawn(Task<void> task, std::string name) {
  PCC_ENSURE(task.valid(), "Scheduler::Spawn: invalid task");
  Thread t;
  t.resume_point = task.handle();
  t.task = std::move(task);
  t.name = std::move(name);
  threads_.push_back(std::move(t));
  return static_cast<Tid>(threads_.size() - 1);
}

bool Scheduler::Step(Tid tid) {
  PCC_ENSURE(tid >= 0 && static_cast<size_t>(tid) < threads_.size(), "Step: bad tid");
  Thread& t = threads_[static_cast<size_t>(tid)];
  PCC_ENSURE(!t.done, "Step: thread already done");
  PCC_ENSURE(!t.blocked, "Step: thread is blocked");
  PCC_ENSURE(current_ == kInvalidTid, "Step: reentrant Step");

  std::coroutine_handle<> h = t.resume_point;
  PCC_ENSURE(h != nullptr, "Step: no resume point");
  t.resume_point = nullptr;

  current_ = tid;
  ++steps_;
  if (collect_footprints_) {
    footprint_.Clear();
  }
  // Resuming may throw only via std::terminate paths; modeled exceptions are
  // captured in the root promise and rethrown below.
  h.resume();
  current_ = kInvalidTid;

  // Re-read: the vector may have been reallocated by a Spawn from inside the
  // running coroutine.
  Thread& after = threads_[static_cast<size_t>(tid)];
  if (after.task.handle().done()) {
    after.done = true;
    after.resume_point = nullptr;
    after.task.RethrowIfFailed();
    return true;
  }
  // The thread suspended at a Yield/Block, which recorded a resume point.
  PCC_ENSURE(after.resume_point != nullptr || after.blocked || after.done,
             "Step: thread suspended without a resume point");
  return false;
}

std::vector<Scheduler::Tid> Scheduler::RunnableThreads() const {
  std::vector<Tid> out;
  for (size_t i = 0; i < threads_.size(); ++i) {
    const Thread& t = threads_[i];
    if (!t.done && !t.blocked) {
      out.push_back(static_cast<Tid>(i));
    }
  }
  return out;
}

bool Scheduler::AllDone() const {
  for (const Thread& t : threads_) {
    if (!t.done) {
      return false;
    }
  }
  return true;
}

bool Scheduler::IsDone(Tid tid) const {
  PCC_ENSURE(tid >= 0 && static_cast<size_t>(tid) < threads_.size(), "IsDone: bad tid");
  return threads_[static_cast<size_t>(tid)].done;
}

void Scheduler::Block(Tid tid) {
  if (tearing_down_) {
    return;
  }
  PCC_ENSURE(tid >= 0 && static_cast<size_t>(tid) < threads_.size(), "Block: bad tid");
  threads_[static_cast<size_t>(tid)].blocked = true;
}

void Scheduler::Unblock(Tid tid) {
  if (tearing_down_) {
    return;
  }
  PCC_ENSURE(tid >= 0 && static_cast<size_t>(tid) < threads_.size(), "Unblock: bad tid");
  threads_[static_cast<size_t>(tid)].blocked = false;
}

void Scheduler::KillAllThreads() {
  PCC_ENSURE(current_ == kInvalidTid, "KillAllThreads during Step");
  tearing_down_ = true;
  threads_.clear();  // destroys all coroutine frames
  tearing_down_ = false;
}

const std::string& Scheduler::thread_name(Tid tid) const {
  PCC_ENSURE(tid >= 0 && static_cast<size_t>(tid) < threads_.size(), "thread_name: bad tid");
  return threads_[static_cast<size_t>(tid)].name;
}

void Scheduler::SetResumePoint(std::coroutine_handle<> h) {
  PCC_ENSURE(current_ != kInvalidTid, "SetResumePoint outside Step");
  threads_[static_cast<size_t>(current_)].resume_point = h;
}

void Scheduler::RecordFootprintAccess(uint64_t resource, bool write) {
  footprint_.recorded = true;
  // Merge duplicates (a step re-touching the same cell) so footprints stay
  // small; these vectors are nested-loop-compared by FootprintsConflict.
  for (Footprint::Access& a : footprint_.accesses) {
    if (a.resource == resource) {
      a.write = a.write || write;
      return;
    }
  }
  footprint_.accesses.push_back(Footprint::Access{resource, write});
}

void RecordAccess(uint64_t resource, bool write) {
  Scheduler* sched = g_current_scheduler;
  if (sched != nullptr && sched->collecting_footprints()) {
    sched->RecordFootprintAccess(resource, write);
  }
}

void RecordPure() {
  Scheduler* sched = g_current_scheduler;
  if (sched != nullptr && sched->collecting_footprints()) {
    sched->RecordFootprintPure();
  }
}

void RecordOpaque() {
  Scheduler* sched = g_current_scheduler;
  if (sched != nullptr && sched->collecting_footprints()) {
    sched->RecordFootprintOpaque();
  }
}

}  // namespace perennial::proc
