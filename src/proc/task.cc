#include "src/proc/task.h"

namespace perennial::proc {

void RunSyncVoid(Task<void> task) {
  task.handle().resume();
  PCC_ENSURE(task.done(), "RunSyncVoid: task suspended but no scheduler is installed");
  task.RethrowIfFailed();
}

}  // namespace perennial::proc
