// The transition-system specification DSL (paper §3.1, Figure 3).
//
// A specification is a transition system: a state type plus, per operation,
// a transition relating pre-state to (post-state, return value). Transitions
// are built from the same primitives the paper's Coq DSL provides — ret,
// gets, modify, undefined — plus explicit nondeterministic choice (needed
// for specs like group commit, where a crash may lose an arbitrary suffix
// of buffered transactions).
//
// A transition is executable: Step(s) enumerates every allowed
// (next-state, return) pair, or reports that the behavior is undefined.
// The refinement checker (src/refine) consumes exactly this interface.
#ifndef PERENNIAL_SRC_TSYS_TRANSITION_H_
#define PERENNIAL_SRC_TSYS_TRANSITION_H_

#include <functional>
#include <utility>
#include <vector>

namespace perennial::tsys {

// The unit value, for transitions that return nothing.
struct Unit {
  friend bool operator==(Unit, Unit) { return true; }
};

// Result of stepping a transition from a concrete state.
template <typename S, typename R>
struct Outcome {
  // True when the pre-state + operation combination is undefined behavior:
  // the spec imposes no obligation, and implementations must never let
  // clients reach it (the checker treats encountering UB as "caller broke
  // the contract", per §8.3 "exploiting undefined behavior").
  bool undefined = false;
  // All allowed (post-state, return value) pairs. Empty with !undefined
  // means the operation is blocked/disallowed here (used by the
  // linearization search to prune).
  std::vector<std::pair<S, R>> branches;

  static Outcome Undef() {
    Outcome o;
    o.undefined = true;
    return o;
  }
  static Outcome None() { return Outcome{}; }
  static Outcome One(S s, R r) {
    Outcome o;
    o.branches.emplace_back(std::move(s), std::move(r));
    return o;
  }
};

// A (possibly nondeterministic) transition over state S returning R.
template <typename S, typename R>
class Transition {
 public:
  using StepFn = std::function<Outcome<S, R>(const S&)>;

  Transition() = default;
  explicit Transition(StepFn fn) : fn_(std::move(fn)) {}

  Outcome<S, R> Step(const S& state) const { return fn_(state); }

  bool valid() const { return static_cast<bool>(fn_); }

  // Monadic sequencing: run this transition, feed the result to `next`.
  // Undefinedness propagates; branches multiply.
  template <typename R2>
  Transition<S, R2> Then(std::function<Transition<S, R2>(const R&)> next) const {
    StepFn self = fn_;
    return Transition<S, R2>([self, next](const S& s) {
      Outcome<S, R> first = self(s);
      if (first.undefined) {
        return Outcome<S, R2>::Undef();
      }
      Outcome<S, R2> out;
      for (const auto& [s1, r1] : first.branches) {
        Outcome<S, R2> rest = next(r1).Step(s1);
        if (rest.undefined) {
          return Outcome<S, R2>::Undef();
        }
        for (auto& branch : rest.branches) {
          out.branches.push_back(std::move(branch));
        }
      }
      return out;
    });
  }

 private:
  StepFn fn_;
};

// ret v: no state change, returns v.
template <typename S, typename R>
Transition<S, R> Ret(R value) {
  return Transition<S, R>(
      [value](const S& s) { return Outcome<S, R>::One(s, value); });
}

// undefined: the behavior is unspecified from every state.
template <typename S, typename R>
Transition<S, R> Undefined() {
  return Transition<S, R>([](const S&) { return Outcome<S, R>::Undef(); });
}

// gets f: reads the state through f, no state change.
template <typename S, typename R>
Transition<S, R> Gets(std::function<R(const S&)> f) {
  return Transition<S, R>(
      [f](const S& s) { return Outcome<S, R>::One(s, f(s)); });
}

// modify f: replaces the state with f(state), returns unit.
template <typename S>
Transition<S, Unit> Modify(std::function<S(const S&)> f) {
  return Transition<S, Unit>(
      [f](const S& s) { return Outcome<S, Unit>::One(f(s), Unit{}); });
}

// Nondeterministic choice among alternatives: the union of their behaviors.
// If any alternative is undefined the whole choice is undefined (the spec
// cannot constrain an implementation that may take the undefined branch).
template <typename S, typename R>
Transition<S, R> Choice(std::vector<Transition<S, R>> alternatives) {
  return Transition<S, R>([alternatives](const S& s) {
    Outcome<S, R> out;
    for (const Transition<S, R>& alt : alternatives) {
      Outcome<S, R> one = alt.Step(s);
      if (one.undefined) {
        return Outcome<S, R>::Undef();
      }
      for (auto& branch : one.branches) {
        out.branches.push_back(std::move(branch));
      }
    }
    return out;
  });
}

// Nondeterministic value pick: enumerates f(state) as possible returns.
template <typename S, typename R>
Transition<S, R> Pick(std::function<std::vector<R>(const S&)> f) {
  return Transition<S, R>([f](const S& s) {
    Outcome<S, R> out;
    for (R& value : f(s)) {
      out.branches.emplace_back(s, std::move(value));
    }
    return out;
  });
}

// Guard: proceeds (returning unit) only when the predicate holds; otherwise
// the transition is blocked (no branches). Useful to express enabling
// conditions in linearization search.
template <typename S>
Transition<S, Unit> Require(std::function<bool(const S&)> pred) {
  return Transition<S, Unit>([pred](const S& s) {
    if (!pred(s)) {
      return Outcome<S, Unit>::None();
    }
    return Outcome<S, Unit>::One(s, Unit{});
  });
}

}  // namespace perennial::tsys

#endif  // PERENNIAL_SRC_TSYS_TRANSITION_H_
