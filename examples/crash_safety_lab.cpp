// Crash-safety lab: how the checker tells correct designs from broken
// ones. Runs the write-ahead-log and shadow-copy patterns (§9.1) in their
// correct form and in classic broken variants, and prints what the
// checker finds — including the schedule that exposes each bug.
//
//   $ ./examples/crash_safety_lab
#include <cstdio>
#include <string>

#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/pattern_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT

void Report(const std::string& title, const refine::Report& report) {
  std::printf("%s\n", title.c_str());
  std::printf("  explored %llu executions, %llu crash injections\n",
              static_cast<unsigned long long>(report.executions),
              static_cast<unsigned long long>(report.crashes_injected));
  if (report.ok()) {
    std::printf("  VERIFIED: every schedule and crash point refines the atomic spec\n\n");
    return;
  }
  const refine::Violation& v = report.violations[0];
  std::printf("  REJECTED (%s)\n", v.kind.c_str());
  std::printf("  offending schedule: %s\n", v.trace.c_str());
  // Indent the detail (it embeds the history).
  std::printf("  %s\n\n", v.detail.c_str());
}

refine::Report CheckWal(WalPair::Mutations mutations, int max_crashes) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations = mutations;
  refine::ExplorerOptions opts;
  opts.max_crashes = max_crashes;
  opts.max_violations = 1;
  refine::Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  return ex.Run();
}

refine::Report CheckShadow(ShadowPair::Mutations mutations, int max_crashes) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations = mutations;
  refine::ExplorerOptions opts;
  opts.max_crashes = max_crashes;
  opts.max_violations = 1;
  refine::Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  return ex.Run();
}

}  // namespace

int main() {
  std::printf("=============================================================\n");
  std::printf(" Write-ahead logging: atomic update of a pair of disk blocks\n");
  std::printf("=============================================================\n\n");

  Report("[wal] correct: log -> commit record -> apply -> clear",
         CheckWal(WalPair::Mutations{}, /*max_crashes=*/2));

  Report("[wal] broken: data blocks updated before the commit record",
         CheckWal(WalPair::Mutations{.apply_before_commit = true}, 1));

  Report("[wal] broken: recovery clears the flag but applies nothing (claims help)",
         CheckWal(WalPair::Mutations{.recovery_discards_log = true}, 1));

  std::printf("=============================================================\n");
  std::printf(" Shadow copy: prepare the inactive copy, commit with one write\n");
  std::printf("=============================================================\n\n");

  Report("[shadow] correct: write inactive copy, then flip the pointer",
         CheckShadow(ShadowPair::Mutations{}, 1));

  Report("[shadow] broken: update the active copy in place",
         CheckShadow(ShadowPair::Mutations{.in_place_update = true}, 1));

  Report("[shadow] broken: flip the pointer before writing the data",
         CheckShadow(ShadowPair::Mutations{.flip_before_data = true}, 1));

  std::printf("=============================================================\n");
  std::printf(" Scaling up: the same check on a worker pool, with progress\n");
  std::printf("=============================================================\n\n");

  {
    // Larger bound (crashes may also hit recovery) to give the pool real
    // work; the parallel aggregate is deterministic, so its verdict and
    // execution count match a serial run of the same configuration.
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    refine::ExplorerOptions opts;
    opts.max_crashes = 2;
    opts.num_workers = 4;
    opts.dedup_histories = true;  // skip re-checking repeated histories
    opts.progress_interval = 2'000;
    opts.progress_callback = [](const refine::ExplorerProgress& p) {
      std::printf("  ... %llu executions, %llu steps, %llu violations so far\n",
                  static_cast<unsigned long long>(p.executions),
                  static_cast<unsigned long long>(p.total_steps),
                  static_cast<unsigned long long>(p.violations));
    };
    refine::ParallelExplorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); },
                                          opts);
    Report("[wal] correct, 2 crashes allowed, 4 workers + fingerprint dedup", ex.Run());
  }

  std::printf("takeaway: the same checker accepts the disciplined designs and\n");
  std::printf("produces a concrete schedule + history for every broken one;\n");
  std::printf("the parallel explorer reaches the same verdicts faster.\n");
  return 0;
}
