// A complete mail-server session: SMTP delivery and POP3 retrieval over
// the verified Mailboat library (§8.2's "Using Mailboat"), including a
// crash in the middle of a delivery and the recovery that cleans up.
//
// The transport is an in-process line loop (the paper likewise measured
// requests on the same machine); swapping in a socket loop would not
// change a line of the protocol or library code.
//
//   $ ./examples/mail_server
#include <cstdio>
#include <string>
#include <vector>

#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/mailboat/mailboat.h"
#include "src/proc/scheduler.h"
#include "src/smtp/mail_serverd.h"
#include "src/smtp/pop3.h"
#include "src/smtp/smtp.h"

namespace {

using namespace perennial;  // NOLINT
using mailboat::Mailboat;

void RunAll(proc::Scheduler& sched) {
  while (!sched.AllDone()) {
    sched.Step(sched.RunnableThreads()[0]);
  }
}

// Feeds lines to a protocol session, printing the exchange.
template <typename Session>
void Converse(proc::Scheduler& sched, Session& session, const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    std::string response;
    auto step = [&]() -> proc::Task<void> { response = co_await session.HandleLine(line); };
    sched.Spawn(step());
    RunAll(sched);
    std::printf("C: %s\n", line.c_str());
    if (!response.empty()) {
      std::printf("S: %s\n", response.c_str());
    }
  }
}

}  // namespace

int main() {
  goose::World world;
  goosefs::GooseFs fs(&world, Mailboat::DirLayout(3));
  Mailboat mail(&world, &fs, Mailboat::Options{3, 4096, 512, 2024});
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);

  std::printf("==== SMTP: deliver two messages to user1 ====\n");
  std::printf("S: %s\n", smtp::SmtpSession::Greeting().c_str());
  smtp::SmtpSession smtp_session(&mail);
  Converse(sched, smtp_session,
           {"HELO laptop", "MAIL FROM:<alice@remote.org>", "RCPT TO:<user1@example.com>", "DATA",
            "Subject: lunch?", "", "How about noon.", ".", "MAIL FROM:<bob@remote.org>",
            "RCPT TO:<user1@example.com>", "DATA", "Subject: report", "", "Attached below.", ".",
            "QUIT"});

  std::printf("\n==== Crash in the middle of a third delivery ====\n");
  {
    // Start a delivery and stop the machine partway through: the message
    // is spooled but never linked into the mailbox.
    auto half_delivery = [&]() -> proc::Task<void> {
      (void)co_await mail.Deliver(1, goosefs::BytesOfString("this one is lost to the crash"));
    };
    sched.Spawn(half_delivery());
    for (int i = 0; i < 4; ++i) {  // run only a few steps of the delivery
      sched.Step(sched.RunnableThreads()[0]);
    }
    sched.KillAllThreads();
    world.Crash();
    std::printf("machine crashed mid-delivery; spool entries: %zu\n",
                fs.PeekNames("spool").size());
    auto recover = [&]() -> proc::Task<void> { co_await mail.Recover(); };
    sched.Spawn(recover());
    RunAll(sched);
    std::printf("after Recover(): spool entries: %zu (cleaned), mailbox intact\n",
                fs.PeekNames("spool").size());
  }

  std::printf("\n==== POP3: user1 reads and deletes their mail ====\n");
  std::printf("S: %s\n", smtp::Pop3Session::Greeting().c_str());
  smtp::Pop3Session pop_session(&mail);
  Converse(sched, pop_session,
           {"USER user1", "PASS anything", "STAT", "LIST", "RETR 1", "DELE 1", "RETR 2", "DELE 2",
            "QUIT"});

  std::printf("\n==== Mailbox is now empty ====\n");
  std::printf("user1 directory entries: %zu\n", fs.PeekNames("user1").size());

  std::printf("\n==== Daemon mode: concurrent sessions as goroutines ====\n");
  {
    smtp::MailServerd daemon(&world, &mail);
    goose::Chan<smtp::Accepted> listener(&world, 4);
    sched.Spawn(daemon.AcceptLoop(&listener), "acceptor");
    smtp::LineConn smtp_conn = smtp::MakeConn(&world);
    smtp::LineConn pop_conn = smtp::MakeConn(&world);
    auto feeder = [&]() -> proc::Task<void> {
      smtp::Accepted first{smtp::Protocol::kSmtp, smtp_conn};
      smtp::Accepted second{smtp::Protocol::kPop3, pop_conn};
      co_await listener.Send(first);
      co_await listener.Send(second);
      co_await listener.Close();
    };
    sched.Spawn(feeder(), "feeder");
    std::vector<std::string> smtp_resp;
    std::vector<std::string> pop_resp;
    auto capture = [](proc::Task<std::vector<std::string>> inner,
                      std::vector<std::string>* out) -> proc::Task<void> {
      *out = co_await std::move(inner);
    };
    sched.Spawn(capture(smtp::RunClientScript(smtp_conn, {"HELO c", "MAIL FROM:<a@b>",
                                                          "RCPT TO:<user2@x>", "DATA",
                                                          "daemon-delivered", ".", "QUIT"}),
                        &smtp_resp),
                "smtp-client");
    sched.Spawn(capture(smtp::RunClientScript(pop_conn, {"USER user2", "PASS x", "STAT", "QUIT"}),
                        &pop_resp),
                "pop3-client");
    // Both sessions interleave request-by-request under the scheduler.
    size_t turn = 0;
    while (!sched.AllDone()) {
      auto runnable = sched.RunnableThreads();
      sched.Step(runnable[turn % runnable.size()]);
      ++turn;
    }
    std::printf("SMTP session closed with: %s\n", smtp_resp.back().c_str());
    std::printf("POP3 session closed with: %s\n", pop_resp.back().c_str());
    std::printf("user2 now has %zu message(s)\n", fs.PeekNames("user2").size());
  }
  return 0;
}
