// Building your own verified system on the framework: a durable key-value
// store with atomic multi-key transactions (src/systems/kvs), exercised
// and then exhaustively checked — including the deadlock the checker finds
// when the lock-ordering discipline is removed.
//
//   $ ./examples/durable_kv
#include <cstdio>

#include "src/refine/explorer.h"
#include "src/systems/kvs/kv_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT

void Check(const char* title, const KvHarnessOptions& options, int max_crashes) {
  refine::ExplorerOptions opts;
  opts.max_crashes = max_crashes;
  opts.max_violations = 1;
  refine::Explorer<KvSpec> ex(KvSpec{options.num_keys},
                              [&] { return MakeKvInstance(options); }, opts);
  refine::Report report = ex.Run();
  std::printf("%s\n  %s\n", title, report.Summary().c_str());
  if (!report.ok()) {
    std::printf("  first violation: %s\n", report.violations[0].ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("-- Use the store: bank-transfer style pair updates --\n");
  goose::World world;
  DurableKv kv(&world, 4);
  {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto story = [&]() -> proc::Task<uint64_t> {
      co_await kv.Put(0, 100, 1);                 // account 0: 100
      co_await kv.PutPair(0, 60, 1, 40, 2);       // transfer 40 to account 1, atomically
      co_return co_await kv.Get(0) * 1000 + co_await kv.Get(1);
    };
    std::optional<uint64_t> out;
    auto wrap = [](proc::Task<uint64_t> t, std::optional<uint64_t>* slot) -> proc::Task<void> {
      *slot = co_await std::move(t);
    };
    sched.Spawn(wrap(story(), &out));
    while (!sched.AllDone()) {
      sched.Step(sched.RunnableThreads()[0]);
    }
    std::printf("   balances after transfer: %llu / %llu\n",
                static_cast<unsigned long long>(*out / 1000),
                static_cast<unsigned long long>(*out % 1000));
  }
  std::printf("\n-- Verify: transactions are atomic across crashes --\n");
  {
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)},
                          {KvSpec::MakeGet(0), KvSpec::MakeGet(1)}};
    Check("[kv] PutPair vs reader, crashes anywhere (incl. recovery):", options, 2);
  }
  std::printf("-- Verify: opposed transactions, ordered locking --\n");
  {
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 3, 0, 4)}};
    Check("[kv] two transactions locking {0,1} in opposite orders:", options, 0);
  }
  std::printf("-- Falsify: remove the lock-ordering discipline --\n");
  {
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 3, 0, 4)}};
    options.mutations.unordered_locks = true;
    Check("[kv] same workload, caller-order locking (should deadlock):", options, 0);
  }
  return 0;
}
