// Quickstart: the replicated disk from the paper's introduction, end to
// end — run it, crash it, recover it, and then let the checker prove (by
// exhaustive exploration) that every schedule and crash point refines the
// one-logical-disk specification.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/goose/world.h"
#include "src/refine/explorer.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/repl/repl_spec.h"
#include "src/systems/repl/replicated_disk.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT

// Modeled procedures are coroutines; drive them with a scheduler.
template <typename T>
T Run(proc::Scheduler& sched, proc::Task<T> task) {
  std::optional<T> slot;
  auto wrap = [](proc::Task<T> inner, std::optional<T>* out) -> proc::Task<void> {
    *out = co_await std::move(inner);
  };
  sched.Spawn(wrap(std::move(task), &slot));
  while (!sched.AllDone()) {
    sched.Step(sched.RunnableThreads()[0]);
  }
  return *slot;
}

}  // namespace

int main() {
  std::printf("-- 1. Use the library: a replicated disk over two block devices --\n");
  goose::World world;
  ReplicatedDisk rd(&world, /*num_blocks=*/4);
  {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto story = [&]() -> proc::Task<uint64_t> {
      co_await rd.Write(0, 1234, /*op_id=*/1);
      co_await rd.Write(1, 5678, /*op_id=*/2);
      co_return co_await rd.Read(0);
    };
    uint64_t value = Run(sched, story());
    std::printf("   wrote 1234 and 5678; rd_read(0) = %llu\n",
                static_cast<unsigned long long>(value));
  }

  std::printf("\n-- 2. Crash and recover: disk 1 fails afterwards, data survives --\n");
  world.Crash();  // memory gone, locks gone, disks keep their blocks
  {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto recover = [&]() -> proc::Task<uint64_t> {
      co_await rd.Recover([](uint64_t) {});
      co_return 0;
    };
    Run(sched, recover());
  }
  rd.FailDisk1();
  {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto read = [&]() -> proc::Task<uint64_t> { co_return co_await rd.Read(1); };
    std::printf("   after crash+recovery and a disk-1 failure, rd_read(1) = %llu\n",
                static_cast<unsigned long long>(Run(sched, read())));
  }

  std::printf("\n-- 3. Verify: every interleaving x crash point refines the spec --\n");
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  refine::ExplorerOptions opts;
  opts.max_crashes = 1;
  refine::Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); },
                                      opts);
  refine::Report report = explorer.Run();
  std::printf("   %s\n", report.Summary().c_str());
  std::printf("   => %s\n",
              report.ok() ? "VERIFIED: concurrent recovery refinement holds"
                          : "VIOLATION FOUND (unexpected!)");
  return report.ok() ? 0 : 1;
}
